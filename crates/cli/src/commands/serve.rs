//! `einet serve` — the multi-tenant TCP serving front-end.
//!
//! Registers zoo models (untrained weights; serving infrastructure, not
//! accuracy, is what this command exercises) behind a [`ModelRegistry`],
//! binds the line-oriented JSON listener, and either serves until the
//! process is interrupted or — with `--self-test N` — drives `N` requests
//! through a real loopback client, prints the per-model serving report and
//! exits, failing if any accounting check breaks.
//!
//! `--reactor` swaps the thread-per-connection ingest loop for the
//! readiness-driven [`ReactorServer`] (one epoll/poll thread for every
//! connection; clients may pipeline and multiplex by `id`). Under
//! `--reactor`, the self-test adds a multiplexed-pipelining phase and a
//! shutdown-under-load phase on top of the sequential sweep. `--autoscale`
//! starts the [`ReplicaScaler`] control loop, growing and shrinking each
//! model's replica set from the windowed SLO metrics.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use einet_core::ExitPlan;
use einet_edge::{PoolConfig, ServeMetrics, StaticSource};
use einet_models::BranchSpec;
use einet_server::{
    ModelRegistry, ModelSpec, ReactorConfig, ReactorServer, ReplicaScaler, ScalerConfig, Server,
};
use einet_trace::json::{self, JsonValue};

use super::{parse_model, CmdResult};
use crate::args::ParsedArgs;

const SIDE: usize = 16;
const CLASSES: usize = 10;

/// Either ingest front-end behind one surface, so the serving logic and
/// self-test phases don't care which one is running.
enum FrontEnd {
    Threaded(Server),
    Reactor(ReactorServer),
}

impl FrontEnd {
    fn local_addr(&self) -> SocketAddr {
        match self {
            FrontEnd::Threaded(s) => s.local_addr(),
            FrontEnd::Reactor(s) => s.local_addr(),
        }
    }

    fn metrics_handle(&self) -> Arc<ServeMetrics> {
        match self {
            FrontEnd::Threaded(s) => s.metrics_handle(),
            FrontEnd::Reactor(s) => s.metrics_handle(),
        }
    }

    fn shutdown(self) {
        match self {
            FrontEnd::Threaded(s) => s.shutdown(),
            FrontEnd::Reactor(s) => s.shutdown(),
        }
    }
}

/// Runs `einet serve`.
pub fn run(args: &ParsedArgs) -> CmdResult {
    let addr = args.get_or("addr", "127.0.0.1:0").to_string();
    let replicas: usize = args.get_parsed_or("replicas", 1)?;
    let workers: usize = args.get_parsed_or("workers", 2)?;
    let queue_capacity: usize = args.get_parsed_or("queue-capacity", 32)?;
    let max_batch: usize = args.get_parsed_or("max-batch", 4)?;
    let block_delay = Duration::from_millis(args.get_parsed_or("block-delay-ms", 0)?);
    let self_test: usize = args.get_parsed_or("self-test", 0)?;
    let reactor = args.has_flag("reactor");
    let autoscale = args.has_flag("autoscale");
    let max_conns: usize = args.get_parsed_or("max-conns", 8192)?;
    let idle_timeout = Duration::from_millis(args.get_parsed_or("idle-timeout-ms", 0)?);
    let max_replicas: usize = args.get_parsed_or("max-replicas", 4)?;
    let metrics_out = args.get("metrics-out").map(std::path::PathBuf::from);
    let prom_out = args.get("prom-out").map(std::path::PathBuf::from);

    let model_list = args.get_or("models", "b-alexnet,flex-vgg16").to_string();
    let trace_path = super::start_tracing(args);

    let mut registry = ModelRegistry::new();
    let mut names = Vec::new();
    for (i, raw) in model_list.split(',').enumerate() {
        let name = raw.trim();
        if name.is_empty() {
            continue;
        }
        let kind = parse_model(name)?;
        let net = kind.build(
            [1, SIDE, SIDE],
            CLASSES,
            &BranchSpec::paper_default(),
            7 + i as u64,
        );
        let exits = kind.exits();
        registry.register(
            name,
            net,
            move |_replica, _worker| Box::new(StaticSource::new(ExitPlan::full(exits))),
            ModelSpec {
                replicas,
                weights: Vec::new(),
                pool: PoolConfig {
                    workers,
                    queue_capacity,
                    max_batch,
                    block_delay,
                    ..PoolConfig::default()
                },
            },
        );
        names.push(name.to_string());
    }
    if names.is_empty() {
        return Err("no models given (--models a,b,...)".into());
    }

    let registry = Arc::new(registry);
    let scaler = if autoscale {
        Some(ReplicaScaler::spawn(
            Arc::clone(&registry),
            ScalerConfig {
                max_replicas,
                ..ScalerConfig::default()
            },
        ))
    } else {
        None
    };
    let front = if reactor {
        let server = ReactorServer::start(
            Arc::clone(&registry),
            &addr,
            ReactorConfig {
                max_conns,
                idle_timeout,
                ..ReactorConfig::default()
            },
        )?;
        println!(
            "reactor ingest: {} backend, max {} connections{}",
            server.backend(),
            max_conns,
            if idle_timeout.is_zero() {
                String::new()
            } else {
                format!(", idle timeout {} ms", idle_timeout.as_millis())
            }
        );
        FrontEnd::Reactor(server)
    } else {
        FrontEnd::Threaded(Server::start(Arc::clone(&registry), &addr)?)
    };
    println!(
        "serving {} model(s) [{}] on {} — {} replica(s) × {} worker(s), queue {}, max-batch {}{}",
        names.len(),
        names.join(", "),
        front.local_addr(),
        replicas,
        workers,
        queue_capacity,
        max_batch,
        if autoscale {
            format!(", autoscaling up to {max_replicas} replicas")
        } else {
            String::new()
        }
    );

    let ingest_metrics = front.metrics_handle();
    if self_test > 0 {
        self_test_loop(&registry, front.local_addr(), &names, self_test)?;
        if reactor {
            // The reactor's contract goes beyond one-in-one-out: pipelined
            // multiplexing and a graceful drain under load.
            self_test_multiplexed(front.local_addr(), &names, self_test.clamp(8, 64))?;
            self_test_shutdown_under_load(front, &names, ingest_metrics.clone())?;
        } else {
            front.shutdown();
        }
    } else {
        println!("send one JSON request per line (see DESIGN.md §10); ctrl-c to stop");
        // Park this thread forever; the listener threads do the work. The
        // process exits via the user's interrupt signal.
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }
    if let Some(scaler) = scaler {
        scaler.stop();
    }

    report(
        &registry,
        &names,
        &ingest_metrics.snapshot(),
        metrics_out.as_deref(),
        prom_out.as_deref(),
    )?;
    if let Some(path) = trace_path {
        super::finish_tracing(&path)?;
    }
    Ok(())
}

/// Drives `total` requests through a real loopback connection: a 70/30
/// split over the first two models (all to the first when only one is
/// registered), every sixth request carrying a 1 ms deadline so the
/// shed-expired path is exercised too. Fails on any unexpected response.
#[allow(clippy::needless_range_loop)]
fn self_test_loop(
    registry: &Arc<ModelRegistry>,
    addr: SocketAddr,
    names: &[String],
    total: usize,
) -> CmdResult {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut tallies = [0u64; 6]; // 200, 429qf, 429exp, 504, 503, other
    for i in 0..total {
        let model = if names.len() > 1 && i % 10 >= 7 {
            &names[1]
        } else {
            &names[0]
        };
        let deadline = if i % 6 == 5 {
            r#""deadline_ms": 1, "#
        } else {
            ""
        };
        let request = format!(
            r#"{{"id": {i}, "model": "{model}", {deadline}"input": {{"shape": [1, 1, {SIDE}, {SIDE}], "fill": 0.3}}}}"#
        );
        writer.write_all(request.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        line.clear();
        reader.read_line(&mut line)?;
        let v = json::parse(line.trim()).map_err(|e| format!("bad response JSON: {e}"))?;
        let code = v.get("code").and_then(JsonValue::as_u64).unwrap_or(0);
        let reason = v.get("reason").and_then(JsonValue::as_str).unwrap_or("");
        match (code, reason) {
            (200, _) => tallies[0] += 1,
            (429, "queue_full") => tallies[1] += 1,
            (429, "expired_in_queue") => tallies[2] += 1,
            (504, _) => tallies[3] += 1,
            (503, _) => tallies[4] += 1,
            _ => tallies[5] += 1,
        }
    }
    println!(
        "self-test: {total} requests → {} ok, {} shed(queue_full), {} shed(expired), \
         {} expired(504), {} unavailable(503), {} other",
        tallies[0], tallies[1], tallies[2], tallies[3], tallies[4], tallies[5]
    );
    if tallies[5] != 0 {
        return Err(format!("{} unexpected responses", tallies[5]).into());
    }
    let answered: u64 = tallies.iter().sum();
    if answered != total as u64 {
        return Err(format!("sent {total} requests but got {answered} responses").into());
    }
    // Client-side sheds must match the server's own accounting exactly.
    let (mut shed_full, mut shed_expired) = (0u64, 0u64);
    for name in names {
        let rs = registry.route_stats(name).expect("registered model");
        let snap = registry.model_snapshot(name).expect("registered model");
        shed_full += rs.shed_queue_full;
        shed_expired += snap.shed_expired_at_dequeue;
        if !snap.reconciles() {
            return Err(format!("model {name:?} metrics do not reconcile after drain").into());
        }
    }
    if shed_full != tallies[1] || shed_expired != tallies[2] {
        return Err(format!(
            "shed accounting mismatch: client saw {}+{} but server counted {shed_full}+{shed_expired}",
            tallies[1], tallies[2]
        )
        .into());
    }
    println!(
        "self-test: shed accounting reconciles ({shed_full} queue-full, {shed_expired} expired)"
    );
    Ok(())
}

/// Reads `expect` response lines and checks off each id against `pending`
/// (id → times still owed). Fails on an id that was never sent or already
/// fully answered.
fn read_and_check_ids(
    reader: &mut BufReader<TcpStream>,
    expect: usize,
    pending: &mut std::collections::HashMap<u64, i64>,
) -> CmdResult {
    let mut line = String::new();
    for _ in 0..expect {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Err("connection closed with responses still owed".into());
        }
        let v = json::parse(line.trim()).map_err(|e| format!("bad response JSON: {e}"))?;
        let id = v
            .get("id")
            .and_then(JsonValue::as_u64)
            .ok_or("response without id")?;
        match pending.get_mut(&id) {
            Some(owed) if *owed > 0 => *owed -= 1,
            _ => return Err(format!("id {id} answered more times than sent").into()),
        }
    }
    Ok(())
}

/// Multiplexing phase: pipelines `burst` requests down one connection
/// without reading a single response, then collects them all — every id
/// must come back exactly once, in whatever order completions arrived.
fn self_test_multiplexed(addr: SocketAddr, names: &[String], burst: usize) -> CmdResult {
    let stream = TcpStream::connect(addr)?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut pending = std::collections::HashMap::new();
    let mut lines = String::new();
    for i in 0..burst {
        let id = 100_000 + i as u64;
        let model = &names[i % names.len()];
        pending.insert(id, 1i64);
        lines.push_str(&format!(
            r#"{{"id": {id}, "model": "{model}", "input": {{"shape": [1, 1, {SIDE}, {SIDE}], "fill": 0.3}}}}"#
        ));
        lines.push('\n');
    }
    writer.write_all(lines.as_bytes())?;
    writer.flush()?;
    read_and_check_ids(&mut reader, burst, &mut pending)?;
    if pending.values().any(|&owed| owed != 0) {
        return Err("multiplexed phase: some ids were never answered".into());
    }
    println!("self-test: {burst} multiplexed ids round-tripped exactly once");
    Ok(())
}

/// Shutdown-under-load phase: pipelines a burst, shuts the front-end down
/// mid-flight, and verifies the graceful drain still answers every id
/// before closing — and that the ingest gauges land back at zero.
fn self_test_shutdown_under_load(
    front: FrontEnd,
    names: &[String],
    metrics: Arc<ServeMetrics>,
) -> CmdResult {
    let burst = 16usize;
    let stream = TcpStream::connect(front.local_addr())?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut pending = std::collections::HashMap::new();
    let mut lines = String::new();
    for i in 0..burst {
        let id = 200_000 + i as u64;
        let model = &names[i % names.len()];
        pending.insert(id, 1i64);
        lines.push_str(&format!(
            r#"{{"id": {id}, "model": "{model}", "input": {{"shape": [1, 1, {SIDE}, {SIDE}], "fill": 0.3}}}}"#
        ));
        lines.push('\n');
    }
    writer.write_all(lines.as_bytes())?;
    writer.flush()?;
    // One response first proves the reactor swept the burst (a single
    // loopback write lands whole) — then pull the rug.
    read_and_check_ids(&mut reader, 1, &mut pending)?;
    front.shutdown();
    read_and_check_ids(&mut reader, burst - 1, &mut pending)?;
    if pending.values().any(|&owed| owed != 0) {
        return Err("shutdown-under-load: some ids were never answered".into());
    }
    let snap = metrics.snapshot();
    if snap.open_connections != 0 || snap.inflight_requests != 0 {
        return Err(format!(
            "shutdown-under-load: gauges not drained ({} connections, {} inflight)",
            snap.open_connections, snap.inflight_requests
        )
        .into());
    }
    println!("self-test: graceful drain answered all {burst} in-flight ids and zeroed the gauges");
    Ok(())
}

/// Prints the per-model serving table and writes the optional artifacts:
/// the merged-snapshot JSON (`--metrics-out`, with the ingest gauges
/// folded in) and the labeled Prometheus exposition (`--prom-out`, with an
/// ingest-scoped section appended).
fn report(
    registry: &Arc<ModelRegistry>,
    names: &[String],
    ingest: &einet_edge::MetricsSnapshot,
    metrics_out: Option<&std::path::Path>,
    prom_out: Option<&std::path::Path>,
) -> CmdResult {
    println!("\nper-model serving metrics:");
    let mut snaps = Vec::new();
    for name in names {
        let rs = registry.route_stats(name).expect("registered model");
        let snap = registry.model_snapshot(name).expect("registered model");
        println!(
            "  {name:>12}: {} routed, {} shed | {} completed | wait p50 {:.2} ms p99 {:.2} ms | \
             service p50 {:.2} ms",
            rs.routed,
            rs.shed_queue_full,
            snap.completed,
            snap.queue_wait.quantile_ms(0.5),
            snap.queue_wait.quantile_ms(0.99),
            snap.service.quantile_ms(0.5),
        );
        snaps.push(snap);
    }
    if let Some(path) = metrics_out {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut merged = einet_edge::MetricsSnapshot::merged(snaps.iter());
        // Pool snapshots carry zero connection gauges; the ingest registry
        // owns them, so the merge grafts them into the one artifact.
        merged.merge(ingest);
        std::fs::write(path, merged.to_json())?;
        println!("wrote serving metrics to {}", path.display());
    }
    if let Some(path) = prom_out {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let mut text = registry.to_prom_text();
        // The connection/inflight gauges live on the ingest front-end, not
        // on any model pool: append them under their own scope label.
        ingest.write_prom_into(&mut text, &[("scope", "ingest")], false);
        std::fs::write(path, text)?;
        println!("wrote Prometheus exposition to {}", path.display());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::run;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn self_test_round_trip_with_artifacts() {
        let _guard = super::super::tracing_test_lock();
        let dir = std::env::temp_dir().join(format!("einet-serve-test-{}", std::process::id()));
        let trace = dir.join("trace.json");
        let metrics = dir.join("serve_metrics.json");
        let prom = dir.join("metrics.prom");
        let code = crate::run(&v(&[
            "serve",
            "--models",
            "b-alexnet",
            "--workers",
            "1",
            "--self-test",
            "12",
            "--trace-out",
            trace.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--prom-out",
            prom.to_str().unwrap(),
        ]));
        assert_eq!(code, 0);
        let metrics_raw = std::fs::read_to_string(&metrics).unwrap();
        let m = einet_trace::json::parse(&metrics_raw).unwrap();
        assert!(m.get("submitted").is_some());
        let prom_raw = std::fs::read_to_string(&prom).unwrap();
        assert!(prom_raw.contains("einet_tasks_submitted_total{model=\"b-alexnet\"}"));
        assert!(prom_raw.contains("einet_route_shed_total"));
        assert!(std::fs::read_to_string(&trace)
            .unwrap()
            .contains("traceEvents"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reactor_self_test_with_autoscale_and_artifacts() {
        let _guard = super::super::tracing_test_lock();
        let dir = std::env::temp_dir().join(format!("einet-reactor-test-{}", std::process::id()));
        let metrics = dir.join("serve_metrics.json");
        let prom = dir.join("metrics.prom");
        let code = crate::run(&v(&[
            "serve",
            "--models",
            "b-alexnet",
            "--workers",
            "1",
            "--reactor",
            "--autoscale",
            "--self-test",
            "12",
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--prom-out",
            prom.to_str().unwrap(),
        ]));
        assert_eq!(code, 0);
        let m = einet_trace::json::parse(&std::fs::read_to_string(&metrics).unwrap()).unwrap();
        // The drained front-end leaves both ingest gauges at zero in the
        // merged artifact — present, not merely defaulted.
        assert_eq!(m.get("open_connections").unwrap().as_u64(), Some(0));
        assert_eq!(m.get("inflight_requests").unwrap().as_u64(), Some(0));
        let prom_raw = std::fs::read_to_string(&prom).unwrap();
        assert!(prom_raw.contains("einet_server_open_connections{scope=\"ingest\"} 0"));
        assert!(prom_raw.contains("einet_replicas{model=\"b-alexnet\"}"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_model_name_fails_fast() {
        assert_eq!(
            run(&v(&["serve", "--models", "nope", "--self-test", "1"])),
            1
        );
    }
}
