//! `einet serve` — the multi-tenant TCP serving front-end.
//!
//! Registers zoo models (untrained weights; serving infrastructure, not
//! accuracy, is what this command exercises) behind a [`ModelRegistry`],
//! binds the line-oriented JSON listener, and either serves until the
//! process is interrupted or — with `--self-test N` — drives `N` requests
//! through a real loopback client, prints the per-model serving report and
//! exits, failing if any accounting check breaks.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use einet_core::ExitPlan;
use einet_edge::{PoolConfig, StaticSource};
use einet_models::BranchSpec;
use einet_server::{ModelRegistry, ModelSpec, Server};
use einet_trace::json::{self, JsonValue};

use super::{parse_model, CmdResult};
use crate::args::ParsedArgs;

const SIDE: usize = 16;
const CLASSES: usize = 10;

/// Runs `einet serve`.
pub fn run(args: &ParsedArgs) -> CmdResult {
    let addr = args.get_or("addr", "127.0.0.1:0").to_string();
    let replicas: usize = args.get_parsed_or("replicas", 1)?;
    let workers: usize = args.get_parsed_or("workers", 2)?;
    let queue_capacity: usize = args.get_parsed_or("queue-capacity", 32)?;
    let max_batch: usize = args.get_parsed_or("max-batch", 4)?;
    let block_delay = Duration::from_millis(args.get_parsed_or("block-delay-ms", 0)?);
    let self_test: usize = args.get_parsed_or("self-test", 0)?;
    let metrics_out = args.get("metrics-out").map(std::path::PathBuf::from);
    let prom_out = args.get("prom-out").map(std::path::PathBuf::from);

    let model_list = args.get_or("models", "b-alexnet,flex-vgg16").to_string();
    let trace_path = super::start_tracing(args);

    let mut registry = ModelRegistry::new();
    let mut names = Vec::new();
    for (i, raw) in model_list.split(',').enumerate() {
        let name = raw.trim();
        if name.is_empty() {
            continue;
        }
        let kind = parse_model(name)?;
        let net = kind.build(
            [1, SIDE, SIDE],
            CLASSES,
            &BranchSpec::paper_default(),
            7 + i as u64,
        );
        let exits = kind.exits();
        registry.register(
            name,
            net,
            move |_replica, _worker| Box::new(StaticSource::new(ExitPlan::full(exits))),
            ModelSpec {
                replicas,
                weights: Vec::new(),
                pool: PoolConfig {
                    workers,
                    queue_capacity,
                    max_batch,
                    block_delay,
                    ..PoolConfig::default()
                },
            },
        );
        names.push(name.to_string());
    }
    if names.is_empty() {
        return Err("no models given (--models a,b,...)".into());
    }

    let registry = Arc::new(registry);
    let server = Server::start(Arc::clone(&registry), &addr)?;
    println!(
        "serving {} model(s) [{}] on {} — {} replica(s) × {} worker(s), queue {}, max-batch {}",
        names.len(),
        names.join(", "),
        server.local_addr(),
        replicas,
        workers,
        queue_capacity,
        max_batch
    );

    if self_test > 0 {
        self_test_loop(&registry, &server, &names, self_test)?;
        server.shutdown();
    } else {
        println!("send one JSON request per line (see DESIGN.md §10); ctrl-c to stop");
        // Park this thread forever; the listener threads do the work. The
        // process exits via the user's interrupt signal.
        loop {
            std::thread::sleep(Duration::from_secs(3600));
        }
    }

    report(
        &registry,
        &names,
        metrics_out.as_deref(),
        prom_out.as_deref(),
    )?;
    if let Some(path) = trace_path {
        super::finish_tracing(&path)?;
    }
    Ok(())
}

/// Drives `total` requests through a real loopback connection: a 70/30
/// split over the first two models (all to the first when only one is
/// registered), every sixth request carrying a 1 ms deadline so the
/// shed-expired path is exercised too. Fails on any unexpected response.
#[allow(clippy::needless_range_loop)]
fn self_test_loop(
    registry: &Arc<ModelRegistry>,
    server: &Server,
    names: &[String],
    total: usize,
) -> CmdResult {
    let stream = TcpStream::connect(server.local_addr())?;
    let mut writer = stream.try_clone()?;
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    let mut tallies = [0u64; 6]; // 200, 429qf, 429exp, 504, 503, other
    for i in 0..total {
        let model = if names.len() > 1 && i % 10 >= 7 {
            &names[1]
        } else {
            &names[0]
        };
        let deadline = if i % 6 == 5 {
            r#""deadline_ms": 1, "#
        } else {
            ""
        };
        let request = format!(
            r#"{{"id": {i}, "model": "{model}", {deadline}"input": {{"shape": [1, 1, {SIDE}, {SIDE}], "fill": 0.3}}}}"#
        );
        writer.write_all(request.as_bytes())?;
        writer.write_all(b"\n")?;
        writer.flush()?;
        line.clear();
        reader.read_line(&mut line)?;
        let v = json::parse(line.trim()).map_err(|e| format!("bad response JSON: {e}"))?;
        let code = v.get("code").and_then(JsonValue::as_u64).unwrap_or(0);
        let reason = v.get("reason").and_then(JsonValue::as_str).unwrap_or("");
        match (code, reason) {
            (200, _) => tallies[0] += 1,
            (429, "queue_full") => tallies[1] += 1,
            (429, "expired_in_queue") => tallies[2] += 1,
            (504, _) => tallies[3] += 1,
            (503, _) => tallies[4] += 1,
            _ => tallies[5] += 1,
        }
    }
    println!(
        "self-test: {total} requests → {} ok, {} shed(queue_full), {} shed(expired), \
         {} expired(504), {} unavailable(503), {} other",
        tallies[0], tallies[1], tallies[2], tallies[3], tallies[4], tallies[5]
    );
    if tallies[5] != 0 {
        return Err(format!("{} unexpected responses", tallies[5]).into());
    }
    let answered: u64 = tallies.iter().sum();
    if answered != total as u64 {
        return Err(format!("sent {total} requests but got {answered} responses").into());
    }
    // Client-side sheds must match the server's own accounting exactly.
    let (mut shed_full, mut shed_expired) = (0u64, 0u64);
    for name in names {
        let rs = registry.route_stats(name).expect("registered model");
        let snap = registry.model_snapshot(name).expect("registered model");
        shed_full += rs.shed_queue_full;
        shed_expired += snap.shed_expired_at_dequeue;
        if !snap.reconciles() {
            return Err(format!("model {name:?} metrics do not reconcile after drain").into());
        }
    }
    if shed_full != tallies[1] || shed_expired != tallies[2] {
        return Err(format!(
            "shed accounting mismatch: client saw {}+{} but server counted {shed_full}+{shed_expired}",
            tallies[1], tallies[2]
        )
        .into());
    }
    println!(
        "self-test: shed accounting reconciles ({shed_full} queue-full, {shed_expired} expired)"
    );
    Ok(())
}

/// Prints the per-model serving table and writes the optional artifacts:
/// the merged-snapshot JSON (`--metrics-out`) and the labeled Prometheus
/// exposition (`--prom-out`).
fn report(
    registry: &Arc<ModelRegistry>,
    names: &[String],
    metrics_out: Option<&std::path::Path>,
    prom_out: Option<&std::path::Path>,
) -> CmdResult {
    println!("\nper-model serving metrics:");
    let mut snaps = Vec::new();
    for name in names {
        let rs = registry.route_stats(name).expect("registered model");
        let snap = registry.model_snapshot(name).expect("registered model");
        println!(
            "  {name:>12}: {} routed, {} shed | {} completed | wait p50 {:.2} ms p99 {:.2} ms | \
             service p50 {:.2} ms",
            rs.routed,
            rs.shed_queue_full,
            snap.completed,
            snap.queue_wait.quantile_ms(0.5),
            snap.queue_wait.quantile_ms(0.99),
            snap.service.quantile_ms(0.5),
        );
        snaps.push(snap);
    }
    if let Some(path) = metrics_out {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let merged = einet_edge::MetricsSnapshot::merged(snaps.iter());
        std::fs::write(path, merged.to_json())?;
        println!("wrote serving metrics to {}", path.display());
    }
    if let Some(path) = prom_out {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, registry.to_prom_text())?;
        println!("wrote Prometheus exposition to {}", path.display());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use crate::run;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn self_test_round_trip_with_artifacts() {
        let _guard = super::super::tracing_test_lock();
        let dir = std::env::temp_dir().join(format!("einet-serve-test-{}", std::process::id()));
        let trace = dir.join("trace.json");
        let metrics = dir.join("serve_metrics.json");
        let prom = dir.join("metrics.prom");
        let code = crate::run(&v(&[
            "serve",
            "--models",
            "b-alexnet",
            "--workers",
            "1",
            "--self-test",
            "12",
            "--trace-out",
            trace.to_str().unwrap(),
            "--metrics-out",
            metrics.to_str().unwrap(),
            "--prom-out",
            prom.to_str().unwrap(),
        ]));
        assert_eq!(code, 0);
        let metrics_raw = std::fs::read_to_string(&metrics).unwrap();
        let m = einet_trace::json::parse(&metrics_raw).unwrap();
        assert!(m.get("submitted").is_some());
        let prom_raw = std::fs::read_to_string(&prom).unwrap();
        assert!(prom_raw.contains("einet_tasks_submitted_total{model=\"b-alexnet\"}"));
        assert!(prom_raw.contains("einet_route_shed_total"));
        assert!(std::fs::read_to_string(&trace)
            .unwrap()
            .contains("traceEvents"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_model_name_fails_fast() {
        assert_eq!(
            run(&v(&["serve", "--models", "nope", "--self-test", "1"])),
            1
        );
    }
}
