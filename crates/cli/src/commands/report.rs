//! `einet report` — render a latency/SLO summary from streamed telemetry.
//!
//! Reads the artifacts a `einet demo --stream-out DIR` run leaves behind —
//! `trace.jsonl` (the streaming trace) and `serve_metrics.json` (the final
//! metrics snapshot) — and prints what an operator wants from a long run:
//! per-category span statistics, flow balance, overflow accounting, and the
//! cumulative + windowed latency/SLO numbers. `--chrome-out FILE` also
//! converts the stream into one Chrome `trace_event` document for Perfetto.
//!
//! A `bench_load --trace-out DIR` directory works too: the server stream is
//! read from `server_trace.jsonl` when `trace.jsonl` is absent, the
//! client-side stream (`client_trace.jsonl`) is merged into the summary and
//! the Chrome document (the two processes joined by trace id), and the
//! stage table from `latency_breakdown.json` — the `trace_check
//! --distributed` artifact — is rendered when present.

use std::path::{Path, PathBuf};

use einet_edge::MetricsSnapshot;
use einet_trace::json::{self, JsonValue};
use einet_trace::stream::read_stream;

use crate::args::ParsedArgs;
use crate::commands::CmdResult;

/// Runs the subcommand.
pub fn run(args: &ParsedArgs) -> CmdResult {
    let dir = PathBuf::from(args.require("dir")?);
    let chrome_out = args.get("chrome-out").map(PathBuf::from);

    // A demo directory streams to trace.jsonl; a distributed bench run
    // leaves server_trace.jsonl (+ client_trace.jsonl) instead.
    let default_path = dir.join("trace.jsonl");
    let stream_path = if default_path.exists() {
        default_path
    } else {
        dir.join("server_trace.jsonl")
    };
    let mut streamed = read_stream(&stream_path)?;

    println!("trace stream: {}", stream_path.display());
    println!(
        "  {} events | {} sweeps every {} ms | {} dropped to ring overflow{}",
        streamed.events.len(),
        streamed.sweeps.len(),
        streamed.period_ms,
        streamed.dropped(),
        if streamed.footer.is_some() {
            ""
        } else {
            " | NO FOOTER (still being written or truncated)"
        },
    );

    // Merge the client-side stream: its events carry the same trace ids
    // (and a distinct pid), so the summary and the Chrome document show
    // both processes of each request.
    let client_path = dir.join("client_trace.jsonl");
    if client_path.exists() {
        let client = read_stream(&client_path)?;
        println!(
            "client stream: {} ({} events merged)",
            client_path.display(),
            client.events.len()
        );
        streamed.events.extend(client.events);
    }
    let summary = streamed.summary();

    println!(
        "\n{:<10} {:>8} {:>12} {:>10} {:>9} {:>6}",
        "category", "spans", "total ms", "max ms", "instants", "flows"
    );
    for (cat, stat) in &summary.categories {
        println!(
            "{:<10} {:>8} {:>12.3} {:>10.3} {:>9} {:>6}",
            cat,
            stat.spans,
            stat.total_us as f64 / 1e3,
            stat.max_us as f64 / 1e3,
            stat.instants,
            stat.flow_points,
        );
    }

    let unbalanced = summary.unbalanced_flows();
    if summary.flows.is_empty() {
        println!("\nflows: none recorded");
    } else if unbalanced.is_empty() {
        println!(
            "\nflows: {} task flows, all balanced (submit -> worker -> end)",
            summary.flows.len()
        );
    } else {
        println!(
            "\nflows: {} task flows, {} UNBALANCED (ids {:?})",
            summary.flows.len(),
            unbalanced.len(),
            &unbalanced[..unbalanced.len().min(8)],
        );
    }

    let metrics_path = dir.join("serve_metrics.json");
    match std::fs::read_to_string(&metrics_path) {
        Ok(text) => {
            let snap = MetricsSnapshot::from_json(&text)?;
            println!("\nserving metrics ({}):", metrics_path.display());
            println!("{snap}");
            println!(
                "SLO: {:.1}% of deadline tasks met their deadline over the whole run \
                 ({} met, {} missed in the final window)",
                run_slo_percent(&snap),
                snap.window.slo_met,
                snap.window.slo_missed,
            );
            if !snap.reconciles() {
                println!("WARNING: snapshot does not reconcile (tasks still in flight?)");
            }
        }
        Err(_) => println!(
            "\nno serving metrics at {} (run the demo with --stream-out to produce it)",
            metrics_path.display()
        ),
    }

    print_breakdown(&dir.join("latency_breakdown.json"));

    if let Some(path) = chrome_out {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(&path, streamed.to_chrome_json())?;
        println!(
            "\nwrote Chrome trace to {} — open it in chrome://tracing or https://ui.perfetto.dev",
            path.display()
        );
    }
    Ok(())
}

/// The stage order of the breakdown table — the request's life in wall
/// order: client think time, the wire, then the server-side stages.
const BREAKDOWN_STAGES: [&str; 8] = [
    "client_wait",
    "wire",
    "ingest",
    "route",
    "queue_wait",
    "batch_assembly",
    "service",
    "reply",
];

/// Renders the per-stage latency table from a `trace_check --distributed`
/// breakdown artifact, when the directory holds one. Silent when absent —
/// plain demo directories have no distributed run to decompose.
fn print_breakdown(path: &Path) {
    let Ok(text) = std::fs::read_to_string(path) else {
        return;
    };
    let Ok(v) = json::parse(&text) else {
        println!(
            "\nlatency breakdown at {} is not valid JSON",
            path.display()
        );
        return;
    };
    let u = |key: &str| v.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
    let fraction = v
        .get("attributed_fraction")
        .and_then(JsonValue::as_f64)
        .unwrap_or(0.0);
    println!("\nlatency breakdown ({}):", path.display());
    println!(
        "  {} requests, {} joined to server flows, {} shed — {:.1}% of \
         client-observed latency attributed to stages",
        u("requests"),
        u("joined"),
        u("sheds"),
        fraction * 100.0,
    );
    let Some(stages) = v.get("stages") else {
        return;
    };
    println!(
        "  {:<15} {:>7} {:>11} {:>9} {:>9} {:>9}",
        "stage", "count", "total ms", "p50 ms", "p95 ms", "max ms"
    );
    for name in BREAKDOWN_STAGES {
        let Some(stage) = stages.get(name) else {
            continue;
        };
        let su = |key: &str| stage.get(key).and_then(JsonValue::as_u64).unwrap_or(0);
        println!(
            "  {:<15} {:>7} {:>11.3} {:>9.3} {:>9.3} {:>9.3}",
            name,
            su("count"),
            su("sum_us") as f64 / 1e3,
            su("p50_us") as f64 / 1e3,
            su("p95_us") as f64 / 1e3,
            su("max_us") as f64 / 1e3,
        );
    }
}

/// Whole-run SLO attainment from the cumulative counters: in-time
/// completions over all deadline outcomes the run recorded (in time,
/// expired mid-service, or shed at dequeue).
fn run_slo_percent(snap: &MetricsSnapshot) -> f64 {
    let missed = snap.deadline_expired + snap.shed_expired_at_dequeue;
    let met = snap.deadline_met;
    let denom = met + missed;
    if denom == 0 {
        100.0
    } else {
        met as f64 / denom as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::{demo, tracing_test_lock};

    fn parsed(args: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(
            &args.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            &["serve-stats"],
        )
        .unwrap()
    }

    #[test]
    fn stream_demo_then_report_round_trips() {
        let _tracing = tracing_test_lock();
        let dir = std::env::temp_dir().join("einet-cli-report-test");
        std::fs::remove_dir_all(&dir).ok();
        demo::run(&parsed(&[
            "demo",
            "--preemptions",
            "0",
            "--epochs",
            "1",
            "--stream-out",
            dir.to_str().unwrap(),
            "--report-every",
            "50",
        ]))
        .unwrap();

        // The demo left all three artifacts behind.
        let streamed = read_stream(dir.join("trace.jsonl")).unwrap();
        assert!(streamed.footer.is_some(), "stream was closed cleanly");
        assert!(!streamed.events.is_empty());
        let prom = std::fs::read_to_string(dir.join("metrics.prom")).unwrap();
        assert!(prom.contains("einet_tasks_submitted_total"));
        assert!(prom.contains("einet_window_slo_attainment"));
        let snap = MetricsSnapshot::from_json(
            &std::fs::read_to_string(dir.join("serve_metrics.json")).unwrap(),
        )
        .unwrap();
        assert!(snap.reconciles(), "final reporter write is at rest");
        assert!(snap.submitted > 0);

        // The streamed trace reconciles with the metrics snapshot: one
        // service span per serviced task, balanced flows for every
        // admitted task that reached the queue.
        let summary = streamed.summary();
        let (task_spans, _) = summary.spans_named("service", "task");
        assert_eq!(task_spans, snap.serviced());
        assert_eq!(
            summary.instants_named("shed_expired"),
            snap.shed_expired_at_dequeue
        );
        assert_eq!(summary.unbalanced_flows(), Vec::<u64>::new());
        assert_eq!(summary.flows.len() as u64, snap.submitted);

        // The report command renders it all without error, and converts to
        // Chrome JSON on request.
        let chrome = dir.join("stream_chrome.json");
        run(&parsed(&[
            "report",
            "--dir",
            dir.to_str().unwrap(),
            "--chrome-out",
            chrome.to_str().unwrap(),
        ]))
        .unwrap();
        let v = einet_trace::json::parse(&std::fs::read_to_string(&chrome).unwrap()).unwrap();
        assert_eq!(
            v.get("traceEvents").unwrap().as_array().unwrap().len(),
            streamed.events.len()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_merges_client_stream_and_renders_breakdown() {
        let dir = std::env::temp_dir().join("einet-cli-report-dist-test");
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();
        // A hand-rolled distributed-run directory: a server stream under the
        // bench_load name, a one-span client stream, and a breakdown file.
        std::fs::write(
            dir.join("server_trace.jsonl"),
            concat!(
                r#"{"type":"header","producer":"einet-trace","version":1,"period_ms":25}"#,
                "\n",
                r#"{"type":"event","name":"task","cat":"service","ph":"X","ts":10,"dur":50,"pid":1,"tid":1,"args":{"trace":7}}"#,
                "\n",
                r#"{"type":"footer","sweeps":1,"events":1,"dropped":0}"#,
                "\n",
            ),
        )
        .unwrap();
        std::fs::write(
            dir.join("client_trace.jsonl"),
            concat!(
                r#"{"type":"header","producer":"einet-bench","version":1,"period_ms":0}"#,
                "\n",
                r#"{"type":"event","name":"request","cat":"client","ph":"X","ts":5,"dur":80,"pid":2,"tid":1,"args":{"trace":7,"code":200}}"#,
                "\n",
                r#"{"type":"footer","sweeps":0,"events":1,"dropped":0}"#,
                "\n",
            ),
        )
        .unwrap();
        std::fs::write(
            dir.join("latency_breakdown.json"),
            r#"{"requests": 1, "joined": 1, "sheds": 0, "attributed_fraction": 0.95,
               "stages": {"service": {"count": 1, "sum_us": 50, "min_us": 50,
                                      "p50_us": 50, "p95_us": 50, "max_us": 50,
                                      "buckets": []}}}"#,
        )
        .unwrap();

        let chrome = dir.join("merged_chrome.json");
        run(&parsed(&[
            "report",
            "--dir",
            dir.to_str().unwrap(),
            "--chrome-out",
            chrome.to_str().unwrap(),
        ]))
        .unwrap();

        // Both processes' events land in the one Chrome document.
        let v = einet_trace::json::parse(&std::fs::read_to_string(&chrome).unwrap()).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert_eq!(events.len(), 2, "server + client events merged");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_on_missing_dir_fails_cleanly() {
        let err = run(&parsed(&["report", "--dir", "/nonexistent/einet-nowhere"]))
            .expect_err("missing stream must fail");
        assert!(err.to_string().contains("cannot read"));
    }
}
