//! `einet report` — render a latency/SLO summary from streamed telemetry.
//!
//! Reads the artifacts a `einet demo --stream-out DIR` run leaves behind —
//! `trace.jsonl` (the streaming trace) and `serve_metrics.json` (the final
//! metrics snapshot) — and prints what an operator wants from a long run:
//! per-category span statistics, flow balance, overflow accounting, and the
//! cumulative + windowed latency/SLO numbers. `--chrome-out FILE` also
//! converts the stream into one Chrome `trace_event` document for Perfetto.

use std::path::PathBuf;

use einet_edge::MetricsSnapshot;
use einet_trace::stream::read_stream;

use crate::args::ParsedArgs;
use crate::commands::CmdResult;

/// Runs the subcommand.
pub fn run(args: &ParsedArgs) -> CmdResult {
    let dir = PathBuf::from(args.require("dir")?);
    let chrome_out = args.get("chrome-out").map(PathBuf::from);

    let stream_path = dir.join("trace.jsonl");
    let streamed = read_stream(&stream_path)?;
    let summary = streamed.summary();

    println!("trace stream: {}", stream_path.display());
    println!(
        "  {} events | {} sweeps every {} ms | {} dropped to ring overflow{}",
        streamed.events.len(),
        streamed.sweeps.len(),
        streamed.period_ms,
        streamed.dropped(),
        if streamed.footer.is_some() {
            ""
        } else {
            " | NO FOOTER (still being written or truncated)"
        },
    );

    println!(
        "\n{:<10} {:>8} {:>12} {:>10} {:>9} {:>6}",
        "category", "spans", "total ms", "max ms", "instants", "flows"
    );
    for (cat, stat) in &summary.categories {
        println!(
            "{:<10} {:>8} {:>12.3} {:>10.3} {:>9} {:>6}",
            cat,
            stat.spans,
            stat.total_us as f64 / 1e3,
            stat.max_us as f64 / 1e3,
            stat.instants,
            stat.flow_points,
        );
    }

    let unbalanced = summary.unbalanced_flows();
    if summary.flows.is_empty() {
        println!("\nflows: none recorded");
    } else if unbalanced.is_empty() {
        println!(
            "\nflows: {} task flows, all balanced (submit -> worker -> end)",
            summary.flows.len()
        );
    } else {
        println!(
            "\nflows: {} task flows, {} UNBALANCED (ids {:?})",
            summary.flows.len(),
            unbalanced.len(),
            &unbalanced[..unbalanced.len().min(8)],
        );
    }

    let metrics_path = dir.join("serve_metrics.json");
    match std::fs::read_to_string(&metrics_path) {
        Ok(text) => {
            let snap = MetricsSnapshot::from_json(&text)?;
            println!("\nserving metrics ({}):", metrics_path.display());
            println!("{snap}");
            println!(
                "SLO: {:.1}% of deadline tasks met their deadline over the whole run \
                 ({} met, {} missed in the final window)",
                run_slo_percent(&snap),
                snap.window.slo_met,
                snap.window.slo_missed,
            );
            if !snap.reconciles() {
                println!("WARNING: snapshot does not reconcile (tasks still in flight?)");
            }
        }
        Err(_) => println!(
            "\nno serving metrics at {} (run the demo with --stream-out to produce it)",
            metrics_path.display()
        ),
    }

    if let Some(path) = chrome_out {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(&path, streamed.to_chrome_json())?;
        println!(
            "\nwrote Chrome trace to {} — open it in chrome://tracing or https://ui.perfetto.dev",
            path.display()
        );
    }
    Ok(())
}

/// Whole-run SLO attainment from the cumulative counters: in-time
/// completions over all deadline outcomes the run recorded (in time,
/// expired mid-service, or shed at dequeue).
fn run_slo_percent(snap: &MetricsSnapshot) -> f64 {
    let missed = snap.deadline_expired + snap.shed_expired_at_dequeue;
    let met = snap.deadline_met;
    let denom = met + missed;
    if denom == 0 {
        100.0
    } else {
        met as f64 / denom as f64 * 100.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::commands::{demo, tracing_test_lock};

    fn parsed(args: &[&str]) -> ParsedArgs {
        ParsedArgs::parse(
            &args.iter().map(|s| s.to_string()).collect::<Vec<_>>(),
            &["serve-stats"],
        )
        .unwrap()
    }

    #[test]
    fn stream_demo_then_report_round_trips() {
        let _tracing = tracing_test_lock();
        let dir = std::env::temp_dir().join("einet-cli-report-test");
        std::fs::remove_dir_all(&dir).ok();
        demo::run(&parsed(&[
            "demo",
            "--preemptions",
            "0",
            "--epochs",
            "1",
            "--stream-out",
            dir.to_str().unwrap(),
            "--report-every",
            "50",
        ]))
        .unwrap();

        // The demo left all three artifacts behind.
        let streamed = read_stream(dir.join("trace.jsonl")).unwrap();
        assert!(streamed.footer.is_some(), "stream was closed cleanly");
        assert!(!streamed.events.is_empty());
        let prom = std::fs::read_to_string(dir.join("metrics.prom")).unwrap();
        assert!(prom.contains("einet_tasks_submitted_total"));
        assert!(prom.contains("einet_window_slo_attainment"));
        let snap = MetricsSnapshot::from_json(
            &std::fs::read_to_string(dir.join("serve_metrics.json")).unwrap(),
        )
        .unwrap();
        assert!(snap.reconciles(), "final reporter write is at rest");
        assert!(snap.submitted > 0);

        // The streamed trace reconciles with the metrics snapshot: one
        // service span per serviced task, balanced flows for every
        // admitted task that reached the queue.
        let summary = streamed.summary();
        let (task_spans, _) = summary.spans_named("service", "task");
        assert_eq!(task_spans, snap.serviced());
        assert_eq!(
            summary.instants_named("shed_expired"),
            snap.shed_expired_at_dequeue
        );
        assert_eq!(summary.unbalanced_flows(), Vec::<u64>::new());
        assert_eq!(summary.flows.len() as u64, snap.submitted);

        // The report command renders it all without error, and converts to
        // Chrome JSON on request.
        let chrome = dir.join("stream_chrome.json");
        run(&parsed(&[
            "report",
            "--dir",
            dir.to_str().unwrap(),
            "--chrome-out",
            chrome.to_str().unwrap(),
        ]))
        .unwrap();
        let v = einet_trace::json::parse(&std::fs::read_to_string(&chrome).unwrap()).unwrap();
        assert_eq!(
            v.get("traceEvents").unwrap().as_array().unwrap().len(),
            streamed.events.len()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_on_missing_dir_fails_cleanly() {
        let err = run(&parsed(&["report", "--dir", "/nonexistent/einet-nowhere"]))
            .expect_err("missing stream must fail");
        assert!(err.to_string().contains("cannot read"));
    }
}
