//! `einet train` — train a multi-exit model and persist checkpoint +
//! profiles.

use std::fs;
use std::path::PathBuf;

use einet_models::{save_params, train_multi_exit, BranchSpec, TrainConfig};
use einet_profile::{CsProfile, EdgePlatform, EtProfile};

use crate::args::ParsedArgs;
use crate::commands::{parse_dataset, parse_model, ArtifactPaths, CmdResult};

/// Runs the subcommand.
pub fn run(args: &ParsedArgs) -> CmdResult {
    let model = parse_model(args.require("model")?)?;
    let dataset = parse_dataset(args.require("dataset")?)?;
    let epochs: usize = args.get_parsed_or("epochs", 14)?;
    let train_n: usize = args.get_parsed_or("train-n", 400)?;
    let test_n: usize = args.get_parsed_or("test-n", 200)?;
    let out_dir = PathBuf::from(args.get_or("out-dir", "einet-out"));
    fs::create_dir_all(&out_dir)?;

    let scale = einet_bench::Scale {
        train_n,
        test_n,
        ..einet_bench::Scale::quick()
    };
    let ds = dataset.generate(&scale);
    let spec = BranchSpec::paper_default();
    let mut net = model.build(ds.input_shape(), ds.num_classes(), &spec, 0xA11CE);
    println!(
        "training {} ({} exits) on {} ({} train / {} test) for {epochs} epochs...",
        model,
        net.num_exits(),
        dataset,
        ds.train().len(),
        ds.test().len()
    );
    let t0 = std::time::Instant::now();
    let report = train_multi_exit(
        &mut net,
        ds.train(),
        &TrainConfig {
            epochs,
            ..TrainConfig::default()
        },
    );
    println!(
        "trained in {:.1}s, loss {:.3} -> {:.3}",
        t0.elapsed().as_secs_f64(),
        report.epoch_losses.first().unwrap_or(&0.0),
        report.epoch_losses.last().unwrap_or(&0.0)
    );

    let et = EtProfile::from_cost_model(&net, EdgePlatform::JetsonClass);
    let cs = CsProfile::generate(&mut net, ds.test());
    println!(
        "test exit accuracies: {}",
        cs.exit_accuracy()
            .iter()
            .map(|a| format!("{:.1}%", a * 100.0))
            .collect::<Vec<_>>()
            .join(" ")
    );

    let paths = ArtifactPaths::in_dir(&out_dir);
    save_params(&mut net, &paths.ckpt)?;
    et.save(&paths.et)?;
    cs.save(&paths.cs)?;
    fs::write(
        &paths.meta,
        format!(
            "model {}\ndataset {}\nepochs {epochs}\n",
            model.id(),
            dataset.id()
        ),
    )?;
    println!("wrote {}", out_dir.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trains_tiny_model_end_to_end() {
        let dir = std::env::temp_dir().join("einet-cli-train-test");
        let _ = fs::remove_dir_all(&dir);
        let args = ParsedArgs::parse(
            &[
                "train",
                "--model",
                "b-alexnet",
                "--dataset",
                "digits",
                "--epochs",
                "1",
                "--train-n",
                "30",
                "--test-n",
                "10",
                "--out-dir",
                dir.to_str().unwrap(),
            ]
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>(),
            &[],
        )
        .unwrap();
        run(&args).unwrap();
        let paths = ArtifactPaths::in_dir(&dir);
        assert!(paths.ckpt.exists());
        assert!(paths.et.exists());
        assert!(paths.cs.exists());
        assert!(paths.meta.exists());
        // Profiles parse back.
        assert_eq!(EtProfile::load(&paths.et).unwrap().num_exits(), 3);
        assert_eq!(CsProfile::load(&paths.cs).unwrap().len(), 10);
    }

    #[test]
    fn rejects_unknown_model() {
        let args = ParsedArgs::parse(
            &[
                "train".into(),
                "--model".into(),
                "nope".into(),
                "--dataset".into(),
                "digits".into(),
            ],
            &[],
        )
        .unwrap();
        assert!(run(&args).is_err());
    }
}
