//! `einet eval` — compare planners on trained profiles under unpredictable
//! exits.

use std::path::PathBuf;

use einet_core::eval::{overall_accuracy, tables_from_profile, EvalConfig};
use einet_core::{
    AllExitsPlanner, ClassicPlanner, ConfidenceThresholdPlanner, EinetPlanner, Planner,
    SearchEngine, StaticPlanner,
};
use einet_predictor::{build_training_set, train_predictor, CsPredictor, PredictorTrainConfig};
use einet_profile::{CsProfile, EtProfile};

use crate::args::ParsedArgs;
use crate::commands::{finish_tracing, parse_dist, start_tracing, ArtifactPaths, CmdResult};

/// Runs the subcommand.
pub fn run(args: &ParsedArgs) -> CmdResult {
    let trace_out = start_tracing(args);
    let dir = PathBuf::from(args.require("dir")?);
    let paths = ArtifactPaths::in_dir(&dir);
    let et = EtProfile::load(&paths.et)?;
    let cs = CsProfile::load(&paths.cs)?;
    let dist = parse_dist(args.get_or("dist", "uniform"))?;
    let trials: usize = args.get_parsed_or("trials", 5)?;
    let predictor_epochs: usize = args.get_parsed_or("predictor-epochs", 40)?;

    println!(
        "profiles: {} exits, {} samples, horizon {:.2} ms, distribution {}",
        et.num_exits(),
        cs.len(),
        et.total_ms(),
        dist.id()
    );
    let n = et.num_exits();
    let mut predictor = CsPredictor::new(n, CsPredictor::default_hidden(n), 7);
    if n >= 2 {
        train_predictor(
            &mut predictor,
            &build_training_set(&cs),
            &PredictorTrainConfig {
                epochs: predictor_epochs,
                ..PredictorTrainConfig::default()
            },
        );
    }
    let tables = tables_from_profile(&cs);
    let cfg = EvalConfig { trials, seed: 7 };
    let prior = cs.exit_mean_confidence();
    let mut planners: Vec<Box<dyn Planner>> = vec![
        Box::new(ClassicPlanner),
        Box::new(StaticPlanner::percent(n, 0.25)),
        Box::new(StaticPlanner::percent(n, 0.5)),
        Box::new(AllExitsPlanner),
        Box::new(ConfidenceThresholdPlanner::new(0.9)),
        Box::new(EinetPlanner::new(
            &predictor,
            prior,
            SearchEngine::default(),
        )),
    ];
    println!(
        "\noverall accuracy ({} samples x {trials} kill draws):",
        cs.len()
    );
    for planner in planners.iter_mut() {
        let acc = overall_accuracy(&et, &dist, &tables, planner.as_mut(), &cfg);
        println!("  {:<24} {:.2}%", planner.name(), acc * 100.0);
    }
    if let Some(path) = &trace_out {
        finish_tracing(path)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use einet_core::SampleTable;

    fn fixture_dir() -> PathBuf {
        let dir = std::env::temp_dir().join("einet-cli-eval-test");
        std::fs::create_dir_all(&dir).unwrap();
        let paths = ArtifactPaths::in_dir(&dir);
        let et = EtProfile::new(vec![1.0; 4], vec![0.5; 4]).unwrap();
        et.save(&paths.et).unwrap();
        let tables: Vec<SampleTable> = Vec::new();
        let _ = tables;
        let cs = CsProfile::new(
            (0..10)
                .map(|i| vec![0.3 + 0.01 * i as f32, 0.5, 0.7, 0.9])
                .collect(),
            (0..10).map(|i| vec![(i % 3) as u16, 0, 0, 0]).collect(),
            (0..10).map(|_| 0u16).collect(),
            4,
        );
        cs.save(&paths.cs).unwrap();
        dir
    }

    #[test]
    fn eval_runs_on_saved_profiles() {
        let dir = fixture_dir();
        let args = ParsedArgs::parse(
            &[
                "eval".to_string(),
                "--dir".to_string(),
                dir.to_str().unwrap().to_string(),
                "--trials".to_string(),
                "2".to_string(),
                "--predictor-epochs".to_string(),
                "2".to_string(),
            ],
            &[],
        )
        .unwrap();
        run(&args).unwrap();
    }

    #[test]
    fn missing_dir_is_an_error() {
        let args = ParsedArgs::parse(
            &[
                "eval".to_string(),
                "--dir".to_string(),
                "/nonexistent/einet".to_string(),
            ],
            &[],
        )
        .unwrap();
        assert!(run(&args).is_err());
    }
}
