//! `einet demo` — the live-preemption demo (threads, real forward passes).

use std::sync::Arc;
use std::time::Duration;

use einet_core::{SearchEngine, TimeDistribution};
use einet_data::{Dataset, SynthDigits};
use einet_edge::{EinetSource, ElasticExecutor, InferenceRequest, PreemptionGate, Preemptor};
use einet_models::{train_multi_exit, zoo, BranchSpec, TrainConfig};
use einet_predictor::{build_training_set, train_predictor, CsPredictor, PredictorTrainConfig};
use einet_profile::{CsProfile, EdgePlatform};

use crate::args::ParsedArgs;
use crate::commands::CmdResult;

/// Runs the subcommand.
pub fn run(args: &ParsedArgs) -> CmdResult {
    let preemptions: usize = args.get_parsed_or("preemptions", 6)?;
    let epochs: usize = args.get_parsed_or("epochs", 8)?;
    println!("training a small 5-exit model for the demo...");
    let ds = SynthDigits::generate(300, 60, 5);
    let mut net = zoo::flex_vgg16(
        ds.input_shape(),
        ds.num_classes(),
        &BranchSpec::paper_default(),
        5,
    );
    train_multi_exit(
        &mut net,
        ds.train(),
        &TrainConfig {
            epochs,
            ..TrainConfig::default()
        },
    );
    let cs = CsProfile::generate(&mut net, ds.test());
    let mut predictor = CsPredictor::new(net.num_exits(), 64, 5);
    train_predictor(
        &mut predictor,
        &build_training_set(&cs),
        &PredictorTrainConfig::default(),
    );
    let gate = PreemptionGate::new();
    let source = EinetSource::new(
        Arc::new(predictor),
        cs.exit_mean_confidence(),
        SearchEngine::default(),
    );
    // 2 ms per block so preemptions land mid-inference on fast hosts.
    let exec = ElasticExecutor::spawn_throttled(
        net,
        Box::new(source),
        gate.clone(),
        EdgePlatform::JetsonClass,
        TimeDistribution::Uniform,
        Duration::from_millis(2),
    );
    let sample = ds.test().images().batch_slice(0, 1);
    let label = ds.test().labels()[0] as u16;
    println!("classifying one sample (true class {label}) under unpredictable preemption:\n");
    for round in 0..preemptions as u64 {
        gate.lower();
        let preemptor = Preemptor::arm(gate.clone(), &TimeDistribution::Uniform, 12.0, 500 + round);
        let outcome = exec
            .submit(InferenceRequest::new(sample.clone()).with_label(label))
            .recv()?;
        let delay = preemptor.join();
        match outcome.answer() {
            Some(a) => println!(
                "  round {round}: kill at {delay:>5.2} ms -> {} with exit {} = class {} ({})",
                if outcome.completed {
                    "finished"
                } else {
                    "PREEMPTED"
                },
                a.exit,
                a.predicted,
                if outcome.correct == Some(true) {
                    "correct"
                } else {
                    "wrong"
                },
            ),
            None => println!("  round {round}: kill at {delay:>5.2} ms -> no result ready"),
        }
    }
    exec.shutdown();
    println!("\nelastic inference always hands over its best checkpoint; a classic model would return nothing when preempted.");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_runs_quickly_with_tiny_settings() {
        let args = ParsedArgs::parse(
            &[
                "demo".to_string(),
                "--preemptions".to_string(),
                "1".to_string(),
                "--epochs".to_string(),
                "1".to_string(),
            ],
            &[],
        )
        .unwrap();
        run(&args).unwrap();
    }
}
