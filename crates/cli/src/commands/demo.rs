//! `einet demo` — the live-preemption demo (threads, real forward passes).

use std::sync::Arc;
use std::time::Duration;

use einet_core::{SearchEngine, TimeDistribution};
use einet_data::{Dataset, SynthDigits};
use einet_edge::{
    EinetSource, ElasticExecutor, ExecutorPool, InferenceRequest, MetricsReporter, PoolConfig,
    PreemptionGate, Preemptor, SubmitError,
};
use einet_models::{train_multi_exit, zoo, BranchSpec, MultiExitNet, TrainConfig};
use einet_predictor::{build_training_set, train_predictor, CsPredictor, PredictorTrainConfig};
use einet_profile::{CsProfile, EdgePlatform};

use crate::args::ParsedArgs;
use crate::commands::{finish_tracing, start_tracing, CmdResult};

/// Runs the subcommand.
pub fn run(args: &ParsedArgs) -> CmdResult {
    let preemptions: usize = args.get_parsed_or("preemptions", 6)?;
    let epochs: usize = args.get_parsed_or("epochs", 8)?;
    // Asking for a metrics artifact implies driving the pool.
    let metrics_out = args.get("metrics-out").map(std::path::PathBuf::from);
    // Continuous-telemetry mode: stream the trace and report metrics into
    // this directory while the pool serves (implies --serve-stats).
    let stream_out = args.get("stream-out").map(std::path::PathBuf::from);
    let report_every = Duration::from_millis(args.get_parsed_or("report-every", 200u64)?.max(1));
    // Serving-pool batching knobs: how many compatible requests one worker
    // may coalesce into a stacked forward, and the admission-window cap on
    // how long it may hold the batch open waiting for company.
    let max_batch: usize = args.get_parsed_or("max-batch", 4usize)?.max(1);
    let batch_window = Duration::from_millis(args.get_parsed_or("batch-window", 2u64)?);
    let serve_stats = args.has_flag("serve-stats") || metrics_out.is_some() || stream_out.is_some();
    let trace_out = start_tracing(args);
    let streamer = match &stream_out {
        Some(dir) => {
            std::fs::create_dir_all(dir)?;
            if trace_out.is_none() {
                // Streaming needs the collector recording even when no
                // one-shot --trace-out drain was requested.
                einet_trace::init(einet_trace::TraceConfig::on());
            }
            let path = dir.join("trace.jsonl");
            let s = einet_trace::TraceStreamer::start(
                &path,
                einet_trace::StreamConfig {
                    period: report_every,
                },
            )?;
            println!(
                "streaming trace to {} (sweep every {} ms)",
                path.display(),
                report_every.as_millis()
            );
            Some(s)
        }
        None => None,
    };
    println!("training a small 5-exit model for the demo...");
    let ds = SynthDigits::generate(300, 60, 5);
    let mut net = zoo::flex_vgg16(
        ds.input_shape(),
        ds.num_classes(),
        &BranchSpec::paper_default(),
        5,
    );
    train_multi_exit(
        &mut net,
        ds.train(),
        &TrainConfig {
            epochs,
            ..TrainConfig::default()
        },
    );
    let cs = CsProfile::generate(&mut net, ds.test());
    let mut predictor = CsPredictor::new(net.num_exits(), 64, 5);
    train_predictor(
        &mut predictor,
        &build_training_set(&cs),
        &PredictorTrainConfig::default(),
    );
    let predictor = Arc::new(predictor);
    let prior = cs.exit_mean_confidence();
    // The pool demo needs its own copy of the trained network; clone it
    // before the executor takes ownership.
    let pool_net = serve_stats.then(|| (net.clone(), Arc::clone(&predictor), prior.clone()));
    let gate = PreemptionGate::new();
    let source = EinetSource::new(Arc::clone(&predictor), prior, SearchEngine::default());
    // 2 ms per block so preemptions land mid-inference on fast hosts.
    let exec = ElasticExecutor::spawn_throttled(
        net,
        Box::new(source),
        gate.clone(),
        EdgePlatform::JetsonClass,
        TimeDistribution::Uniform,
        Duration::from_millis(2),
    );
    let sample = ds.test().images().batch_slice(0, 1);
    let label = ds.test().labels()[0];
    println!("classifying one sample (true class {label}) under unpredictable preemption:\n");
    for round in 0..preemptions as u64 {
        gate.lower();
        let preemptor = Preemptor::arm(gate.clone(), &TimeDistribution::Uniform, 12.0, 500 + round);
        let outcome = exec
            .submit(InferenceRequest::new(sample.clone()).with_label(label))?
            .recv()?;
        let delay = preemptor.join();
        match outcome.answer() {
            Some(a) => println!(
                "  round {round}: kill at {delay:>5.2} ms -> {} with exit {} = class {} ({})",
                if outcome.is_complete() {
                    "finished"
                } else {
                    "PREEMPTED"
                },
                a.exit,
                a.predicted,
                if outcome.correct == Some(true) {
                    "correct"
                } else {
                    "wrong"
                },
            ),
            None => println!("  round {round}: kill at {delay:>5.2} ms -> no result ready"),
        }
    }
    exec.shutdown();
    println!("\nelastic inference always hands over its best checkpoint; a classic model would return nothing when preempted.");
    if let Some((pool_net, predictor, prior)) = pool_net {
        serve_with_stats(
            pool_net,
            predictor,
            prior,
            &ds,
            metrics_out.as_deref(),
            stream_out.as_deref(),
            report_every,
            max_batch,
            batch_window,
        )?;
    }
    if let Some(streamer) = streamer {
        let stats = streamer.stop()?;
        if trace_out.is_none() {
            einet_trace::init(einet_trace::TraceConfig::off());
        }
        println!(
            "streamed {} events over {} sweeps ({} dropped to ring overflow)",
            stats.events, stats.sweeps, stats.dropped
        );
        if let Some(dir) = &stream_out {
            println!("inspect with: einet report --dir {}", dir.display());
        }
    }
    if let Some(path) = &trace_out {
        finish_tracing(path)?;
    }
    Ok(())
}

/// The `--serve-stats` section: drives the same trained model through an
/// [`ExecutorPool`] — burst admission with backpressure, per-task deadlines
/// and a mid-burst preemption — then prints the pool's metrics snapshot.
/// With `--stream-out`, a [`MetricsReporter`] also rewrites
/// `metrics.prom` + `serve_metrics.json` in the stream directory every
/// `report_every` while the pool serves. `--max-batch`/`--batch-window`
/// control the pool's adaptive coalescing.
#[allow(clippy::too_many_arguments)]
fn serve_with_stats(
    net: MultiExitNet,
    predictor: Arc<CsPredictor>,
    prior: Vec<f32>,
    ds: &SynthDigits,
    metrics_out: Option<&std::path::Path>,
    stream_dir: Option<&std::path::Path>,
    report_every: Duration,
    max_batch: usize,
    batch_window: Duration,
) -> CmdResult {
    println!("\nserving the same model through the executor pool (--serve-stats):");
    let gate = PreemptionGate::new();
    let pool = ExecutorPool::spawn(
        net,
        |_worker| {
            Box::new(EinetSource::new(
                Arc::clone(&predictor),
                prior.clone(),
                SearchEngine::default(),
            ))
        },
        gate.clone(),
        PoolConfig {
            workers: 2,
            queue_capacity: 4,
            block_delay: Duration::from_millis(2),
            max_batch,
            batch_window,
            ..PoolConfig::default()
        },
    );
    let reporter = stream_dir.map(|dir| {
        MetricsReporter::spawn(
            pool.metrics_handle(),
            dir.join("metrics.prom"),
            Some(dir.join("serve_metrics.json")),
            report_every,
        )
    });
    let test = ds.test();
    let mut replies = Vec::new();
    let mut rejected = 0u64;
    for i in 0..24usize {
        let idx = i % test.len();
        let sample = test.images().batch_slice(idx, idx + 1);
        let mut request = InferenceRequest::new(sample).with_label(test.labels()[idx]);
        // Every third request carries a tight deadline, so the snapshot
        // shows all three ways a task can end.
        if i % 3 == 0 {
            request = request.with_deadline(Duration::from_millis(6));
        }
        match pool.submit(request) {
            Ok(rx) => replies.push(rx),
            Err(SubmitError::QueueFull) => rejected += 1,
            Err(e) => return Err(e.into()),
        }
        if i == 8 {
            // A mid-burst "vRAN" claim preempts whatever is in flight.
            Preemptor::arm_in(gate.clone(), Duration::from_millis(5)).join();
            gate.lower();
        }
    }
    for rx in replies {
        let _ = rx.recv()?;
    }
    let snap = pool.metrics().snapshot();
    if let Some(reporter) = reporter {
        // The final write happens after every task has finished, so the
        // on-disk artifacts agree with the snapshot printed below.
        reporter.stop();
    }
    pool.shutdown();
    println!("{snap}");
    println!("  ({rejected} submissions bounced by backpressure, never blocking the caller)");
    if let Some(path) = metrics_out {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::write(path, snap.to_json())?;
        println!("wrote serving metrics to {}", path.display());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn demo_runs_quickly_with_tiny_settings() {
        let args = ParsedArgs::parse(
            &[
                "demo".to_string(),
                "--preemptions".to_string(),
                "1".to_string(),
                "--epochs".to_string(),
                "1".to_string(),
            ],
            &[],
        )
        .unwrap();
        run(&args).unwrap();
    }

    #[test]
    fn trace_and_metrics_artifacts_are_written_and_parse() {
        let _tracing = crate::commands::tracing_test_lock();
        let dir = std::env::temp_dir().join("einet-cli-demo-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("trace.json");
        let metrics_path = dir.join("serve_metrics.json");
        let args = ParsedArgs::parse(
            &[
                "demo".to_string(),
                "--preemptions".to_string(),
                "1".to_string(),
                "--epochs".to_string(),
                "1".to_string(),
                "--trace-out".to_string(),
                trace_path.to_str().unwrap().to_string(),
                "--metrics-out".to_string(),
                metrics_path.to_str().unwrap().to_string(),
            ],
            &[],
        )
        .unwrap();
        run(&args).unwrap();
        // Both artifacts exist and parse with the crate's own JSON parser.
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        let v = einet_trace::json::parse(&trace).unwrap();
        let events = v.get("traceEvents").unwrap().as_array().unwrap();
        assert!(!events.is_empty());
        // Other tests may run (untraced code paths) concurrently, so only
        // assert presence of the categories this demo must produce.
        let cats: std::collections::BTreeSet<&str> = events
            .iter()
            .filter_map(|e| e.get("cat").and_then(|c| c.as_str()))
            .collect();
        for cat in ["queue", "service", "block", "exit", "search", "predictor"] {
            assert!(cats.contains(cat), "missing category {cat} in {cats:?}");
        }
        let metrics = std::fs::read_to_string(&metrics_path).unwrap();
        let m = einet_trace::json::parse(&metrics).unwrap();
        assert!(m.get("submitted").unwrap().as_u64().unwrap() > 0);
        assert!(m.get("service").unwrap().get("count").is_some());
    }

    #[test]
    fn serve_stats_path_runs_the_pool_and_prints_a_snapshot() {
        let args = ParsedArgs::parse(
            &[
                "demo".to_string(),
                "--preemptions".to_string(),
                "0".to_string(),
                "--epochs".to_string(),
                "1".to_string(),
                "--serve-stats".to_string(),
            ],
            &["serve-stats"],
        )
        .unwrap();
        run(&args).unwrap();
    }
}
