//! `einet plan` — search a near-optimal exit plan on trained profiles.

use std::path::PathBuf;

use einet_core::{expectation, ExitPlan, SearchEngine};
use einet_profile::{CsProfile, EtProfile};

use crate::args::ParsedArgs;
use crate::commands::{parse_dist, ArtifactPaths, CmdResult};

/// Runs the subcommand.
pub fn run(args: &ParsedArgs) -> CmdResult {
    let dir = PathBuf::from(args.require("dir")?);
    let paths = ArtifactPaths::in_dir(&dir);
    let et = EtProfile::load(&paths.et)?;
    let cs = CsProfile::load(&paths.cs)?;
    let dist = parse_dist(args.get_or("dist", "uniform"))?;
    let m: usize = args.get_parsed_or("m", 4)?;
    let confs = cs.exit_mean_confidence();
    let n = et.num_exits();

    let engine = SearchEngine::new(m);
    let t0 = std::time::Instant::now();
    let (plan, score) = engine.search(&et, &dist, &confs, 0, None);
    let elapsed_ms = t0.elapsed().as_secs_f64() * 1e3;

    let full = ExitPlan::full(n);
    let full_score = expectation(&et, &dist, &full, &confs);
    println!(
        "profiles: {} exits, horizon {:.2} ms, distribution {}",
        n,
        et.total_ms(),
        dist.id()
    );
    println!("searched plan (m={m}, {elapsed_ms:.3} ms):");
    println!("  plan        {plan}");
    println!("  executes    {} of {} branches", plan.count_executed(), n);
    println!(
        "  expectation {:.4} (run-everything plan: {:.4})",
        score, full_score
    );
    println!(
        "  plan time   {:.2} ms of {:.2} ms horizon",
        et.plan_time_ms(&plan.to_bools()),
        et.total_ms()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_runs_on_saved_profiles() {
        let dir = std::env::temp_dir().join("einet-cli-plan-test");
        std::fs::create_dir_all(&dir).unwrap();
        let paths = ArtifactPaths::in_dir(&dir);
        EtProfile::new(vec![1.0; 5], vec![0.4; 5])
            .unwrap()
            .save(&paths.et)
            .unwrap();
        CsProfile::new(
            vec![vec![0.3, 0.4, 0.6, 0.8, 0.9]; 4],
            vec![vec![0; 5]; 4],
            vec![0; 4],
            5,
        )
        .save(&paths.cs)
        .unwrap();
        let args = ParsedArgs::parse(
            &[
                "plan".to_string(),
                "--dir".to_string(),
                dir.to_str().unwrap().to_string(),
                "--m".to_string(),
                "5".to_string(),
            ],
            &[],
        )
        .unwrap();
        run(&args).unwrap();
    }

    #[test]
    fn bad_dist_is_an_error() {
        let dir = std::env::temp_dir().join("einet-cli-plan-test2");
        std::fs::create_dir_all(&dir).unwrap();
        let args = ParsedArgs::parse(
            &[
                "plan".to_string(),
                "--dir".to_string(),
                dir.to_str().unwrap().to_string(),
                "--dist".to_string(),
                "weibull".to_string(),
            ],
            &[],
        )
        .unwrap();
        assert!(run(&args).is_err());
    }
}
