//! Subcommand implementations.

pub mod demo;
pub mod eval;
pub mod experiments;
pub mod plan;
pub mod report;
pub mod serve;
pub mod train;

use std::error::Error;
use std::path::{Path, PathBuf};

use einet_bench::DatasetKind;
use einet_core::TimeDistribution;
use einet_models::ModelKind;

/// The boxed-error result every subcommand returns.
pub type CmdResult = Result<(), Box<dyn Error>>;

/// Tracing state is process-global, and `cargo test` runs this crate's
/// tests in parallel inside one process: every test that enables tracing
/// (via `--trace-out` or `--stream-out`) must hold this lock, or a
/// concurrent drain/sweep would steal its events.
#[cfg(test)]
pub(crate) fn tracing_test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::OnceLock<std::sync::Mutex<()>> = std::sync::OnceLock::new();
    LOCK.get_or_init(|| std::sync::Mutex::new(()))
        .lock()
        .unwrap_or_else(|p| p.into_inner())
}

/// Enables process-wide tracing when the command was given
/// `--trace-out PATH`, returning the path the Chrome trace will go to.
/// Call [`finish_tracing`] with the returned path once the traced work is
/// done.
pub(crate) fn start_tracing(args: &crate::args::ParsedArgs) -> Option<PathBuf> {
    let path = PathBuf::from(args.get("trace-out")?);
    einet_trace::init(einet_trace::TraceConfig::on());
    Some(path)
}

/// Drains the trace, writes the Chrome `trace_event` JSON to `path`
/// (creating parent directories), prints the per-category summary, and
/// turns tracing back off.
pub(crate) fn finish_tracing(path: &Path) -> CmdResult {
    let snapshot = einet_trace::drain();
    einet_trace::init(einet_trace::TraceConfig::off());
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    std::fs::write(path, snapshot.to_chrome_json())?;
    println!("\ntrace summary ({} events):", snapshot.events.len());
    println!("{}", snapshot.summary());
    println!(
        "wrote Chrome trace to {} — open it in chrome://tracing or https://ui.perfetto.dev",
        path.display()
    );
    Ok(())
}

/// Parses a model name.
pub(crate) fn parse_model(name: &str) -> Result<ModelKind, String> {
    ModelKind::all()
        .into_iter()
        .find(|m| m.id() == name)
        .ok_or_else(|| {
            format!(
                "unknown model {name:?} (expected one of: {})",
                ModelKind::all().map(|m| m.id()).join(", ")
            )
        })
}

/// Parses a dataset name.
pub(crate) fn parse_dataset(name: &str) -> Result<DatasetKind, String> {
    DatasetKind::all()
        .into_iter()
        .find(|d| d.id() == name)
        .ok_or_else(|| {
            format!(
                "unknown dataset {name:?} (expected one of: {})",
                DatasetKind::all().map(|d| d.id()).join(", ")
            )
        })
}

/// Parses a kill-time distribution name.
pub(crate) fn parse_dist(name: &str) -> Result<TimeDistribution, String> {
    match name {
        "uniform" => Ok(TimeDistribution::Uniform),
        "gauss0.5" => Ok(TimeDistribution::gaussian(0.5)),
        "gauss1.0" | "gauss1" => Ok(TimeDistribution::gaussian(1.0)),
        other => Err(format!(
            "unknown distribution {other:?} (expected uniform, gauss0.5 or gauss1.0)"
        )),
    }
}

/// Standard artifact paths inside a `--dir`.
pub(crate) struct ArtifactPaths {
    pub et: PathBuf,
    pub cs: PathBuf,
    pub ckpt: PathBuf,
    pub meta: PathBuf,
}

impl ArtifactPaths {
    pub(crate) fn in_dir(dir: &Path) -> Self {
        ArtifactPaths {
            et: dir.join("model.et"),
            cs: dir.join("model.cs"),
            ckpt: dir.join("model.ckpt"),
            meta: dir.join("model.meta"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn model_and_dataset_parsing() {
        assert_eq!(parse_model("msdnet21").unwrap(), ModelKind::MsdNet21);
        assert!(parse_model("resnet-9000").is_err());
        assert_eq!(parse_dataset("digits").unwrap(), DatasetKind::Digits);
        assert!(parse_dataset("imagenet").is_err());
    }

    #[test]
    fn dist_parsing() {
        assert_eq!(parse_dist("uniform").unwrap(), TimeDistribution::Uniform);
        assert!(matches!(
            parse_dist("gauss0.5").unwrap(),
            TimeDistribution::Gaussian { .. }
        ));
        assert!(parse_dist("poisson").is_err());
    }

    #[test]
    fn artifact_paths_are_rooted() {
        let p = ArtifactPaths::in_dir(Path::new("/tmp/x"));
        assert!(p.et.starts_with("/tmp/x"));
        assert!(p.ckpt.ends_with("model.ckpt"));
    }
}
