//! The `einet` binary: thin wrapper around [`einet_cli::run`].

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    std::process::exit(einet_cli::run(&args));
}
