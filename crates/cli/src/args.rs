//! Minimal `--key value` argument parsing (no external dependencies).

use std::collections::BTreeMap;
use std::fmt;

/// A parsed command line: one subcommand plus `--key value` options and
/// bare `--flag`s.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ParsedArgs {
    subcommand: Option<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Errors from argument parsing or lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// `--key` appeared at the end with no value and is not a known flag.
    MissingValue(String),
    /// A required option was not supplied.
    Required(String),
    /// A value failed to parse into the requested type.
    BadValue {
        /// Option name.
        key: String,
        /// Offending raw value.
        value: String,
    },
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::MissingValue(k) => write!(f, "option --{k} is missing its value"),
            ArgsError::Required(k) => write!(f, "required option --{k} was not given"),
            ArgsError::BadValue { key, value } => {
                write!(f, "option --{key} has invalid value {value:?}")
            }
        }
    }
}

impl std::error::Error for ArgsError {}

impl ParsedArgs {
    /// Parses raw arguments (without the program name). `known_flags` lists
    /// the bare options that take no value.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::MissingValue`] when a non-flag `--key` has no
    /// following value.
    pub fn parse(args: &[String], known_flags: &[&str]) -> Result<Self, ArgsError> {
        let mut parsed = ParsedArgs::default();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if let Some(key) = a.strip_prefix("--") {
                if known_flags.contains(&key) {
                    parsed.flags.push(key.to_string());
                    i += 1;
                } else if i + 1 < args.len() {
                    parsed.options.insert(key.to_string(), args[i + 1].clone());
                    i += 2;
                } else {
                    return Err(ArgsError::MissingValue(key.to_string()));
                }
            } else {
                if parsed.subcommand.is_none() {
                    parsed.subcommand = Some(a.clone());
                } else {
                    // Extra positionals are treated as flags (forgiving).
                    parsed.flags.push(a.clone());
                }
                i += 1;
            }
        }
        Ok(parsed)
    }

    /// The subcommand, if any.
    pub fn subcommand(&self) -> Option<&str> {
        self.subcommand.as_deref()
    }

    /// Raw string value of an option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// Value of an option, or a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Required option value.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::Required`] when absent.
    pub fn require(&self, key: &str) -> Result<&str, ArgsError> {
        self.get(key).ok_or_else(|| ArgsError::Required(key.into()))
    }

    /// Typed option value with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgsError::BadValue`] when present but unparsable.
    pub fn get_parsed_or<T: std::str::FromStr>(
        &self,
        key: &str,
        default: T,
    ) -> Result<T, ArgsError> {
        match self.get(key) {
            None => Ok(default),
            Some(raw) => raw.parse().map_err(|_| ArgsError::BadValue {
                key: key.into(),
                value: raw.into(),
            }),
        }
    }

    /// Whether a bare flag was given.
    pub fn has_flag(&self, flag: &str) -> bool {
        self.flags.iter().any(|f| f == flag)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parses_subcommand_options_and_flags() {
        let p = ParsedArgs::parse(
            &v(&["train", "--model", "msdnet21", "--quick", "--epochs", "7"]),
            &["quick", "full"],
        )
        .unwrap();
        assert_eq!(p.subcommand(), Some("train"));
        assert_eq!(p.get("model"), Some("msdnet21"));
        assert!(p.has_flag("quick"));
        assert_eq!(p.get_parsed_or("epochs", 0usize).unwrap(), 7);
    }

    #[test]
    fn defaults_and_requirements() {
        let p = ParsedArgs::parse(&v(&["eval"]), &[]).unwrap();
        assert_eq!(p.get_or("planner", "einet"), "einet");
        assert!(matches!(p.require("model"), Err(ArgsError::Required(_))));
    }

    #[test]
    fn missing_value_is_error() {
        let e = ParsedArgs::parse(&v(&["plan", "--m"]), &[]).unwrap_err();
        assert!(matches!(e, ArgsError::MissingValue(k) if k == "m"));
    }

    #[test]
    fn bad_typed_value_is_error() {
        let p = ParsedArgs::parse(&v(&["x", "--n", "abc"]), &[]).unwrap();
        assert!(matches!(
            p.get_parsed_or("n", 1usize),
            Err(ArgsError::BadValue { .. })
        ));
    }

    #[test]
    fn no_subcommand_is_none() {
        let p = ParsedArgs::parse(&v(&["--quick"]), &["quick"]).unwrap();
        assert_eq!(p.subcommand(), None);
        assert!(p.has_flag("quick"));
    }
}
