//! The model registry: named models, replicated pools, weighted routing,
//! and SLO-driven replica autoscaling.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use einet_edge::{
    CompletionFn, ExecutorPool, InferenceRequest, MetricsSnapshot, PlannerSource, PoolConfig,
    PreemptionGate, SubmitError, TaskResult,
};
use einet_models::MultiExitNet;
use einet_trace::{self as trace, Args, Category};

/// How a model is deployed: how many pool replicas, their relative routing
/// weights, and the per-pool sizing.
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// Independent [`ExecutorPool`]s for this model, each owning its own
    /// clone of the network (≥ 1).
    pub replicas: usize,
    /// Relative routing weight per replica. Empty means equal weights;
    /// otherwise the length must equal `replicas` and every weight must be
    /// positive. A weight-3 replica receives 3× the requests of a weight-1
    /// one, interleaved smoothly (never 3 in a row when avoidable).
    /// Replicas added later by the autoscaler always join with weight 1.
    pub weights: Vec<u32>,
    /// Sizing and cost-model configuration applied to every replica.
    pub pool: PoolConfig,
}

impl Default for ModelSpec {
    fn default() -> Self {
        ModelSpec {
            replicas: 1,
            weights: Vec::new(),
            pool: PoolConfig::default(),
        }
    }
}

/// Why the registry could not place a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// No model with that name is registered (a 404, not a shed).
    UnknownModel,
    /// Every replica's admission queue is at capacity: the request is shed
    /// with backpressure — the 429-style signal the wire layer reports.
    Shed,
    /// The model's pools are shutting down.
    Closed,
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::UnknownModel => write!(f, "unknown model"),
            RouteError::Shed => write!(f, "all replicas at capacity"),
            RouteError::Closed => write!(f, "model is shutting down"),
        }
    }
}

impl std::error::Error for RouteError {}

/// Registry-level routing counters for one model. These count *logical*
/// requests, one per [`ModelRegistry::submit`] call — unlike the pool-level
/// `rejected` counter, which counts per-replica attempts and therefore
/// grows by more than one when a request spills over several full replicas
/// before being shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouteStats {
    /// Requests accepted by some replica.
    pub routed: u64,
    /// Requests shed because every replica was at capacity.
    pub shed_queue_full: u64,
    /// Replicas added by [`ModelRegistry::scale_up`].
    pub scale_ups: u64,
    /// Replicas retired by [`ModelRegistry::scale_down`].
    pub scale_downs: u64,
}

/// The replicas of one model plus their routing schedule; swapped under a
/// write lock only when the autoscaler acts, read on every submit.
struct ReplicaSet {
    replicas: Vec<ExecutorPool>,
    gates: Vec<PreemptionGate>,
    weights: Vec<u32>,
    /// Smooth weighted-round-robin schedule over replica indices; the
    /// cursor walks it forever. Precomputed so the hot path is one
    /// `fetch_add` and an index.
    schedule: Vec<u32>,
}

type SourceFactory = Box<dyn FnMut(usize, usize) -> Box<dyn PlannerSource> + Send>;

struct ModelEntry {
    name: String,
    set: RwLock<ReplicaSet>,
    cursor: AtomicU64,
    routed: AtomicU64,
    shed_queue_full: AtomicU64,
    scale_ups: AtomicU64,
    scale_downs: AtomicU64,
    /// Total replicas ever spawned for this model: the next replica index
    /// handed to the source factory (so planner sources stay distinct
    /// across scale-up/scale-down cycles).
    spawned: AtomicU64,
    /// Final snapshots of retired replicas, folded in so model-level
    /// reconciliation stays exact across scale-downs.
    retired: Mutex<MetricsSnapshot>,
    /// The pristine network; every replica (initial or scaled-up) starts
    /// from its own clone.
    template: MultiExitNet,
    make_source: Mutex<SourceFactory>,
    pool_cfg: PoolConfig,
}

/// Named models, each backed by one or more [`ExecutorPool`] replicas, with
/// weighted round-robin routing, per-model metrics and runtime scaling. See
/// the crate docs for the full picture.
///
/// Registration is a build-time concern (`&mut self`); routing is
/// lock-free apart from a read lock on the replica set (`&self`), so the
/// registry is shared behind an `Arc` once serving starts. The replica set
/// only takes its write lock when [`ModelRegistry::scale_up`] /
/// [`ModelRegistry::scale_down`] swap the schedule.
pub struct ModelRegistry {
    models: Vec<ModelEntry>,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry { models: Vec::new() }
    }

    /// Registers `net` under `name`, spawning `spec.replicas` pools, each
    /// with its own clone of the network and its own [`PreemptionGate`].
    /// `make_source` mints a planner source per `(replica, worker)`; it is
    /// kept for the lifetime of the registry so the autoscaler can mint
    /// sources for replicas added later.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name, zero replicas, a weight vector whose
    /// length differs from `replicas`, or a zero weight — all configuration
    /// bugs, not runtime conditions.
    pub fn register(
        &mut self,
        name: &str,
        net: MultiExitNet,
        mut make_source: impl FnMut(usize, usize) -> Box<dyn PlannerSource> + Send + 'static,
        spec: ModelSpec,
    ) {
        assert!(
            self.models.iter().all(|m| m.name != name),
            "model {name:?} is already registered"
        );
        assert!(spec.replicas >= 1, "a model needs at least one replica");
        let weights = if spec.weights.is_empty() {
            vec![1; spec.replicas]
        } else {
            assert_eq!(spec.weights.len(), spec.replicas, "one weight per replica");
            assert!(
                spec.weights.iter().all(|&w| w > 0),
                "weights must be positive"
            );
            spec.weights.clone()
        };
        let mut replicas = Vec::with_capacity(spec.replicas);
        let mut gates = Vec::with_capacity(spec.replicas);
        for r in 0..spec.replicas {
            let gate = PreemptionGate::new();
            // Every replica owns its own copy of the network
            // (`MultiExitNet: Clone` via `Layer::clone_box`).
            let pool = ExecutorPool::spawn(
                net.clone(),
                |w| make_source(r, w),
                gate.clone(),
                spec.pool.clone(),
            );
            replicas.push(pool);
            gates.push(gate);
        }
        self.models.push(ModelEntry {
            name: name.to_string(),
            set: RwLock::new(ReplicaSet {
                replicas,
                gates,
                schedule: smooth_wrr_schedule(&weights),
                weights,
            }),
            cursor: AtomicU64::new(0),
            routed: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
            scale_ups: AtomicU64::new(0),
            scale_downs: AtomicU64::new(0),
            spawned: AtomicU64::new(spec.replicas as u64),
            retired: Mutex::new(MetricsSnapshot::empty()),
            template: net,
            make_source: Mutex::new(Box::new(make_source)),
            pool_cfg: spec.pool,
        });
    }

    /// The registered model names, in registration order.
    pub fn model_names(&self) -> Vec<&str> {
        self.models.iter().map(|m| m.name.as_str()).collect()
    }

    /// Number of replicas behind `name` (`None` for an unknown model).
    pub fn replica_count(&self, name: &str) -> Option<usize> {
        Some(self.entry(name)?.set.read().expect("lock").replicas.len())
    }

    /// The preemption gate of one replica, for operators that emulate a
    /// high-priority claim on a specific device.
    pub fn gate(&self, name: &str, replica: usize) -> Option<PreemptionGate> {
        self.entry(name)?
            .set
            .read()
            .expect("lock")
            .gates
            .get(replica)
            .cloned()
    }

    fn entry(&self, name: &str) -> Option<&ModelEntry> {
        self.models.iter().find(|m| m.name == name)
    }

    /// Routes `request` to a replica of `name`: the weighted-round-robin
    /// pick first, then spillover through the remaining replicas when it is
    /// full. The returned channel yields the task's [`TaskResult`].
    ///
    /// # Errors
    ///
    /// [`RouteError::UnknownModel`] for an unregistered name;
    /// [`RouteError::Shed`] when every replica refused with `QueueFull`
    /// (the explicit 429-style outcome); [`RouteError::Closed`] when the
    /// pools are shutting down.
    pub fn submit(
        &self,
        name: &str,
        request: InferenceRequest,
    ) -> Result<Receiver<TaskResult>, RouteError> {
        let _route = trace::span_args(
            Category::Queue,
            "route",
            Args::one("trace", request.trace()),
        );
        let Some(entry) = self.entry(name) else {
            trivial_flow(request.trace());
            return Err(RouteError::UnknownModel);
        };
        let set = entry.set.read().expect("lock");
        let slot = entry.cursor.fetch_add(1, Ordering::Relaxed) as usize % set.schedule.len();
        let first = set.schedule[slot] as usize;
        let n = set.replicas.len();
        let mut closed = false;
        // The scheduled replica, then the others in ring order: a full
        // queue on one replica spills to its siblings before shedding.
        // Requests are cheap to clone (the tensor buffer is the payload and
        // spillover is the cold path).
        for offset in 0..n {
            let idx = (first + offset) % n;
            match set.replicas[idx].submit(request.clone()) {
                Ok(rx) => {
                    entry.routed.fetch_add(1, Ordering::Relaxed);
                    return Ok(rx);
                }
                Err(SubmitError::QueueFull) => {}
                Err(SubmitError::WorkerGone) => closed = true,
            }
        }
        trivial_flow(request.trace());
        if closed {
            return Err(RouteError::Closed);
        }
        entry.shed_queue_full.fetch_add(1, Ordering::Relaxed);
        trace::instant(Category::Queue, "route_shed", Args::none());
        Err(RouteError::Shed)
    }

    /// Routes `request` like [`ModelRegistry::submit`], but delivers the
    /// result through `on_complete` (invoked exactly once, on the worker
    /// thread that finishes the task) instead of a blocking channel — the
    /// readiness-driven ingest path. Returns the pool-assigned task id.
    ///
    /// # Errors
    ///
    /// The same routing errors as [`ModelRegistry::submit`], with the
    /// unused callback handed back so the caller can answer the requester
    /// directly.
    pub fn submit_callback(
        &self,
        name: &str,
        request: InferenceRequest,
        on_complete: CompletionFn,
    ) -> Result<u64, (RouteError, CompletionFn)> {
        let _route = trace::span_args(
            Category::Queue,
            "route",
            Args::one("trace", request.trace()),
        );
        let Some(entry) = self.entry(name) else {
            trivial_flow(request.trace());
            return Err((RouteError::UnknownModel, on_complete));
        };
        let set = entry.set.read().expect("lock");
        let slot = entry.cursor.fetch_add(1, Ordering::Relaxed) as usize % set.schedule.len();
        let first = set.schedule[slot] as usize;
        let n = set.replicas.len();
        let mut closed = false;
        let mut cb = on_complete;
        for offset in 0..n {
            let idx = (first + offset) % n;
            match set.replicas[idx].submit_with(request.clone(), cb) {
                Ok(task_id) => {
                    entry.routed.fetch_add(1, Ordering::Relaxed);
                    return Ok(task_id);
                }
                Err((SubmitError::QueueFull, c)) => cb = c,
                Err((SubmitError::WorkerGone, c)) => {
                    cb = c;
                    closed = true;
                }
            }
        }
        trivial_flow(request.trace());
        if closed {
            return Err((RouteError::Closed, cb));
        }
        entry.shed_queue_full.fetch_add(1, Ordering::Relaxed);
        trace::instant(Category::Queue, "route_shed", Args::none());
        Err((RouteError::Shed, cb))
    }

    /// Adds one replica to `name` (weight 1), cloning the pristine network
    /// and minting fresh planner sources. Returns the new replica count,
    /// `None` for an unknown model. The pool is spawned outside the write
    /// lock, so routing stalls only for the schedule swap.
    pub fn scale_up(&self, name: &str) -> Option<usize> {
        let entry = self.entry(name)?;
        let r = entry.spawned.fetch_add(1, Ordering::Relaxed) as usize;
        let gate = PreemptionGate::new();
        let pool = {
            let mut source = entry.make_source.lock().expect("lock");
            ExecutorPool::spawn(
                entry.template.clone(),
                |w| (source)(r, w),
                gate.clone(),
                entry.pool_cfg.clone(),
            )
        };
        let mut set = entry.set.write().expect("lock");
        set.replicas.push(pool);
        set.gates.push(gate);
        set.weights.push(1);
        set.schedule = smooth_wrr_schedule(&set.weights);
        let count = set.replicas.len();
        drop(set);
        entry.scale_ups.fetch_add(1, Ordering::Relaxed);
        trace::instant(
            Category::Queue,
            "scale_up",
            Args::one("replicas", count as u64),
        );
        Some(count)
    }

    /// Retires the last replica of `name`: removes it from routing, drains
    /// it (queued tasks still answer their requesters) and folds its final
    /// metrics into the model's retired accumulator so
    /// [`ModelRegistry::model_snapshot`] keeps reconciling. Returns the new
    /// replica count; `None` for an unknown model or when only one replica
    /// remains (a model never scales to zero).
    pub fn scale_down(&self, name: &str) -> Option<usize> {
        let entry = self.entry(name)?;
        let (pool, count) = {
            let mut set = entry.set.write().expect("lock");
            if set.replicas.len() <= 1 {
                return None;
            }
            let pool = set.replicas.pop().expect("non-empty");
            set.gates.pop();
            set.weights.pop();
            set.schedule = smooth_wrr_schedule(&set.weights);
            (pool, set.replicas.len())
        };
        // Drain outside the lock: routing continues on the survivors while
        // the retired pool finishes its queue.
        let final_snap = {
            let metrics = pool.metrics_handle();
            pool.shutdown();
            metrics.snapshot()
        };
        entry.retired.lock().expect("lock").merge(&final_snap);
        entry.scale_downs.fetch_add(1, Ordering::Relaxed);
        trace::instant(
            Category::Queue,
            "scale_down",
            Args::one("replicas", count as u64),
        );
        Some(count)
    }

    /// Registry-level routing counters for `name`.
    pub fn route_stats(&self, name: &str) -> Option<RouteStats> {
        self.entry(name).map(|m| RouteStats {
            routed: m.routed.load(Ordering::Relaxed),
            shed_queue_full: m.shed_queue_full.load(Ordering::Relaxed),
            scale_ups: m.scale_ups.load(Ordering::Relaxed),
            scale_downs: m.scale_downs.load(Ordering::Relaxed),
        })
    }

    /// The metrics snapshot of one replica of `name` — the unmerged view,
    /// for per-replica dashboards and routing-distribution checks.
    pub fn replica_snapshot(&self, name: &str, replica: usize) -> Option<MetricsSnapshot> {
        let entry = self.entry(name)?;
        let set = entry.set.read().expect("lock");
        Some(set.replicas.get(replica)?.metrics().snapshot())
    }

    /// The merged metrics snapshot of every replica of `name` — live ones
    /// plus the accumulated totals of replicas retired by the autoscaler
    /// (see [`MetricsSnapshot::merge`] for per-field semantics).
    pub fn model_snapshot(&self, name: &str) -> Option<MetricsSnapshot> {
        let entry = self.entry(name)?;
        let set = entry.set.read().expect("lock");
        let mut out = entry.retired.lock().expect("lock").clone();
        for p in &set.replicas {
            out.merge(&p.metrics().snapshot());
        }
        Some(out)
    }

    /// The merged snapshot across every model and replica — the fleet view.
    pub fn aggregate_snapshot(&self) -> MetricsSnapshot {
        let mut out = MetricsSnapshot::empty();
        for m in &self.models {
            if let Some(snap) = self.model_snapshot(&m.name) {
                out.merge(&snap);
            }
        }
        out
    }

    /// One Prometheus exposition for the whole registry: every serving
    /// series labeled `model="<name>"` (headers emitted once per family),
    /// plus registry-level routing, replica and scaling counters.
    pub fn to_prom_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096 * self.models.len().max(1));
        for (i, m) in self.models.iter().enumerate() {
            let snap = self.model_snapshot(&m.name).expect("registered model");
            snap.write_prom_into(&mut out, &[("model", m.name.as_str())], i == 0);
        }
        let mut counter = |name: &str, help: &str, value: &dyn Fn(&ModelEntry) -> u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            for m in &self.models {
                let _ = writeln!(out, "{name}{{model=\"{}\"}} {}", m.name, value(m));
            }
        };
        counter(
            "einet_route_requests_total",
            "Logical requests accepted by some replica.",
            &|m| m.routed.load(Ordering::Relaxed),
        );
        counter(
            "einet_route_shed_total",
            "Logical requests shed with every replica at capacity.",
            &|m| m.shed_queue_full.load(Ordering::Relaxed),
        );
        counter(
            "einet_scale_up_total",
            "Replicas added by the autoscaler.",
            &|m| m.scale_ups.load(Ordering::Relaxed),
        );
        counter(
            "einet_scale_down_total",
            "Replicas retired by the autoscaler.",
            &|m| m.scale_downs.load(Ordering::Relaxed),
        );
        let _ = writeln!(out, "# HELP einet_replicas Live replicas behind the model.");
        let _ = writeln!(out, "# TYPE einet_replicas gauge");
        for m in &self.models {
            let _ = writeln!(
                out,
                "einet_replicas{{model=\"{}\"}} {}",
                m.name,
                m.set.read().expect("lock").replicas.len()
            );
        }
        out
    }

    /// Shuts every pool down: stops admissions, drains queued tasks (their
    /// replies still arrive) and joins every worker.
    pub fn shutdown(self) {
        for m in self.models {
            let set = m.set.into_inner().expect("lock");
            for pool in set.replicas {
                pool.shutdown();
            }
        }
    }
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("models", &self.model_names())
            .finish()
    }
}

/// A traced request that never reaches a pool still gets a server-side
/// flow — an immediate start/end pair under its global trace id — so the
/// distributed reconciler can join shed, unknown-model and closed
/// responses to a server flow just like served ones. Untraced requests
/// (trace 0) skip it, preserving the single-process flow set.
fn trivial_flow(trace: u64) {
    if trace != 0 {
        trace::flow_start(Category::Service, "task_flow", trace);
        trace::flow_end(Category::Service, "task_flow", trace);
    }
}

/// Smooth weighted round-robin: a schedule of `Σ weights` slots where
/// replica `i` appears `weights[i]` times, interleaved (the classic
/// nginx-style algorithm), so bursts to one replica are avoided even with
/// skewed weights.
fn smooth_wrr_schedule(weights: &[u32]) -> Vec<u32> {
    let total: i64 = weights.iter().map(|&w| i64::from(w)).sum();
    let mut credit = vec![0i64; weights.len()];
    let mut schedule = Vec::with_capacity(total as usize);
    for _ in 0..total {
        for (c, &w) in credit.iter_mut().zip(weights) {
            *c += i64::from(w);
        }
        let best = credit
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .expect("non-empty weights");
        credit[best] -= total;
        schedule.push(best as u32);
    }
    schedule
}

/// Autoscaler policy knobs. Defaults favour stability over reaction speed:
/// two consecutive breach observations before growing, a longer calm streak
/// before shrinking, and a cooldown after every action so the loop never
/// flaps on its own transient.
#[derive(Debug, Clone)]
pub struct ScalerConfig {
    /// Never shrink below this many replicas (≥ 1).
    pub min_replicas: usize,
    /// Never grow beyond this many replicas.
    pub max_replicas: usize,
    /// Scale up when windowed SLO attainment drops below this fraction.
    pub slo_target: f64,
    /// Deadline-carrying samples the window must hold before its
    /// attainment is trusted (avoids scaling on one early miss).
    pub min_window_samples: u64,
    /// Scale up when the merged queue depth exceeds this many tasks,
    /// regardless of SLO (queue delay is the leading indicator).
    pub queue_depth_high: u64,
    /// Consecutive overloaded ticks required before growing.
    pub breaches_to_scale: u32,
    /// Consecutive calm ticks (empty queue, healthy SLO) before shrinking.
    pub idle_ticks_to_shrink: u32,
    /// Minimum time between two scaling actions on the same model.
    pub cooldown: Duration,
    /// Evaluation period.
    pub tick: Duration,
}

impl Default for ScalerConfig {
    fn default() -> Self {
        ScalerConfig {
            min_replicas: 1,
            max_replicas: 4,
            slo_target: 0.9,
            min_window_samples: 8,
            queue_depth_high: 16,
            breaches_to_scale: 2,
            idle_ticks_to_shrink: 5,
            cooldown: Duration::from_millis(500),
            tick: Duration::from_millis(100),
        }
    }
}

/// Hysteresis state for one model.
struct ModelScalerState {
    up_breaches: u32,
    calm_ticks: u32,
    last_action: Instant,
}

/// A background control loop that grows and shrinks each model's replica
/// set from the rolling-window SLO-attainment and queue-depth gauges
/// [`einet_edge::ServeMetrics`] already exports.
///
/// Policy per tick and model: *overloaded* (windowed attainment below
/// target with enough samples, or queue depth above the high-water knob)
/// for [`ScalerConfig::breaches_to_scale`] consecutive ticks →
/// [`ModelRegistry::scale_up`]; *calm* (empty queue, healthy SLO) for
/// [`ScalerConfig::idle_ticks_to_shrink`] consecutive ticks →
/// [`ModelRegistry::scale_down`]. A cooldown separates any two actions on
/// the same model; bounds come from min/max replicas.
#[derive(Debug)]
pub struct ReplicaScaler {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<()>>,
}

impl ReplicaScaler {
    /// Spawns the control loop over `registry`.
    pub fn spawn(registry: Arc<ModelRegistry>, cfg: ScalerConfig) -> ReplicaScaler {
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = Arc::clone(&stop);
        let handle = std::thread::Builder::new()
            .name("einet-replica-scaler".to_string())
            .spawn(move || scaler_loop(&registry, &cfg, &stop_flag))
            .expect("spawn replica scaler");
        ReplicaScaler {
            stop,
            handle: Some(handle),
        }
    }

    /// Signals the loop and joins it.
    pub fn stop(mut self) {
        self.stop_in_place();
    }

    fn stop_in_place(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ReplicaScaler {
    fn drop(&mut self) {
        self.stop_in_place();
    }
}

fn scaler_loop(registry: &ModelRegistry, cfg: &ScalerConfig, stop: &AtomicBool) {
    let names: Vec<String> = registry
        .model_names()
        .into_iter()
        .map(String::from)
        .collect();
    let mut states: Vec<ModelScalerState> = names
        .iter()
        .map(|_| ModelScalerState {
            up_breaches: 0,
            calm_ticks: 0,
            // Allow an immediate first action once hysteresis is satisfied.
            last_action: Instant::now() - cfg.cooldown,
        })
        .collect();
    while !stop.load(Ordering::Relaxed) {
        // Sleep in small slices so stop() never waits a full tick.
        let wake = Instant::now() + cfg.tick;
        while Instant::now() < wake && !stop.load(Ordering::Relaxed) {
            std::thread::sleep(Duration::from_millis(5).min(cfg.tick));
        }
        if stop.load(Ordering::Relaxed) {
            break;
        }
        for (name, state) in names.iter().zip(states.iter_mut()) {
            let Some(snap) = registry.model_snapshot(name) else {
                continue;
            };
            let Some(replicas) = registry.replica_count(name) else {
                continue;
            };
            let slo_samples = snap.window.slo_met + snap.window.slo_missed;
            let overloaded = (slo_samples >= cfg.min_window_samples
                && snap.window.slo_attainment() < cfg.slo_target)
                || snap.queue_depth > cfg.queue_depth_high;
            let calm = snap.queue_depth == 0
                && (slo_samples == 0 || snap.window.slo_attainment() >= cfg.slo_target);
            if overloaded {
                state.calm_ticks = 0;
                state.up_breaches = state.up_breaches.saturating_add(1);
                if state.up_breaches >= cfg.breaches_to_scale
                    && state.last_action.elapsed() >= cfg.cooldown
                    && replicas < cfg.max_replicas
                {
                    registry.scale_up(name);
                    state.up_breaches = 0;
                    state.last_action = Instant::now();
                }
            } else if calm {
                state.up_breaches = 0;
                state.calm_ticks = state.calm_ticks.saturating_add(1);
                if state.calm_ticks >= cfg.idle_ticks_to_shrink
                    && state.last_action.elapsed() >= cfg.cooldown
                    && replicas > cfg.min_replicas.max(1)
                {
                    registry.scale_down(name);
                    // Keep the calm streak: sustained idleness shrinks all
                    // the way back down, one cooldown apart.
                    state.calm_ticks = 0;
                    state.last_action = Instant::now();
                }
            } else {
                state.up_breaches = 0;
                state.calm_ticks = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooth_wrr_interleaves_rather_than_bursts() {
        assert_eq!(smooth_wrr_schedule(&[1, 1]), vec![0, 1]);
        // Weight 3:1 → a appears 3 times in 4 slots, never 3 in a row.
        let s = smooth_wrr_schedule(&[3, 1]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.iter().filter(|&&r| r == 0).count(), 3);
        // The classic smooth-WRR order: a a b a.
        assert_eq!(s, vec![0, 0, 1, 0]);
        // 5:1:1 spreads the heavy replica across the cycle.
        let s = smooth_wrr_schedule(&[5, 1, 1]);
        assert_eq!(s.len(), 7);
        assert_eq!(s.iter().filter(|&&r| r == 0).count(), 5);
        assert_ne!(&s[0..3], &[0, 0, 0], "no opening burst");
    }
}
