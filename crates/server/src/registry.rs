//! The model registry: named models, replicated pools, weighted routing.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::Receiver;

use einet_edge::{
    ExecutorPool, InferenceRequest, MetricsSnapshot, PlannerSource, PoolConfig, PreemptionGate,
    SubmitError, TaskResult,
};
use einet_models::MultiExitNet;
use einet_trace::{self as trace, Args, Category};

/// How a model is deployed: how many pool replicas, their relative routing
/// weights, and the per-pool sizing.
#[derive(Debug, Clone)]
pub struct ModelSpec {
    /// Independent [`ExecutorPool`]s for this model, each owning its own
    /// clone of the network (≥ 1).
    pub replicas: usize,
    /// Relative routing weight per replica. Empty means equal weights;
    /// otherwise the length must equal `replicas` and every weight must be
    /// positive. A weight-3 replica receives 3× the requests of a weight-1
    /// one, interleaved smoothly (never 3 in a row when avoidable).
    pub weights: Vec<u32>,
    /// Sizing and cost-model configuration applied to every replica.
    pub pool: PoolConfig,
}

impl Default for ModelSpec {
    fn default() -> Self {
        ModelSpec {
            replicas: 1,
            weights: Vec::new(),
            pool: PoolConfig::default(),
        }
    }
}

/// Why the registry could not place a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteError {
    /// No model with that name is registered (a 404, not a shed).
    UnknownModel,
    /// Every replica's admission queue is at capacity: the request is shed
    /// with backpressure — the 429-style signal the wire layer reports.
    Shed,
    /// The model's pools are shutting down.
    Closed,
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RouteError::UnknownModel => write!(f, "unknown model"),
            RouteError::Shed => write!(f, "all replicas at capacity"),
            RouteError::Closed => write!(f, "model is shutting down"),
        }
    }
}

impl std::error::Error for RouteError {}

/// Registry-level routing counters for one model. These count *logical*
/// requests, one per [`ModelRegistry::submit`] call — unlike the pool-level
/// `rejected` counter, which counts per-replica attempts and therefore
/// grows by more than one when a request spills over several full replicas
/// before being shed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RouteStats {
    /// Requests accepted by some replica.
    pub routed: u64,
    /// Requests shed because every replica was at capacity.
    pub shed_queue_full: u64,
}

struct ModelEntry {
    name: String,
    replicas: Vec<ExecutorPool>,
    gates: Vec<PreemptionGate>,
    /// Smooth weighted-round-robin schedule over replica indices; the
    /// cursor walks it forever. Precomputed so the hot path is one
    /// `fetch_add` and an index.
    schedule: Vec<u32>,
    cursor: AtomicU64,
    routed: AtomicU64,
    shed_queue_full: AtomicU64,
}

/// Named models, each backed by one or more [`ExecutorPool`] replicas, with
/// weighted round-robin routing and per-model metrics. See the crate docs
/// for the full picture.
///
/// Registration is a build-time concern (`&mut self`); routing is
/// lock-free (`&self`), so the registry is shared behind an `Arc` once
/// serving starts.
pub struct ModelRegistry {
    models: Vec<ModelEntry>,
}

impl Default for ModelRegistry {
    fn default() -> Self {
        Self::new()
    }
}

impl ModelRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        ModelRegistry { models: Vec::new() }
    }

    /// Registers `net` under `name`, spawning `spec.replicas` pools, each
    /// with its own clone of the network and its own [`PreemptionGate`].
    /// `make_source` mints a planner source per `(replica, worker)`.
    ///
    /// # Panics
    ///
    /// Panics on a duplicate name, zero replicas, a weight vector whose
    /// length differs from `replicas`, or a zero weight — all configuration
    /// bugs, not runtime conditions.
    pub fn register(
        &mut self,
        name: &str,
        net: MultiExitNet,
        mut make_source: impl FnMut(usize, usize) -> Box<dyn PlannerSource>,
        spec: ModelSpec,
    ) {
        assert!(
            self.models.iter().all(|m| m.name != name),
            "model {name:?} is already registered"
        );
        assert!(spec.replicas >= 1, "a model needs at least one replica");
        let weights = if spec.weights.is_empty() {
            vec![1; spec.replicas]
        } else {
            assert_eq!(spec.weights.len(), spec.replicas, "one weight per replica");
            assert!(
                spec.weights.iter().all(|&w| w > 0),
                "weights must be positive"
            );
            spec.weights.clone()
        };
        let mut replicas = Vec::with_capacity(spec.replicas);
        let mut gates = Vec::with_capacity(spec.replicas);
        for r in 0..spec.replicas {
            let gate = PreemptionGate::new();
            // Every replica owns its own copy of the network
            // (`MultiExitNet: Clone` via `Layer::clone_box`).
            let pool = ExecutorPool::spawn(
                net.clone(),
                |w| make_source(r, w),
                gate.clone(),
                spec.pool.clone(),
            );
            replicas.push(pool);
            gates.push(gate);
        }
        self.models.push(ModelEntry {
            name: name.to_string(),
            replicas,
            gates,
            schedule: smooth_wrr_schedule(&weights),
            cursor: AtomicU64::new(0),
            routed: AtomicU64::new(0),
            shed_queue_full: AtomicU64::new(0),
        });
    }

    /// The registered model names, in registration order.
    pub fn model_names(&self) -> Vec<&str> {
        self.models.iter().map(|m| m.name.as_str()).collect()
    }

    /// Number of replicas behind `name` (`None` for an unknown model).
    pub fn replica_count(&self, name: &str) -> Option<usize> {
        self.entry(name).map(|m| m.replicas.len())
    }

    /// The preemption gate of one replica, for operators that emulate a
    /// high-priority claim on a specific device.
    pub fn gate(&self, name: &str, replica: usize) -> Option<PreemptionGate> {
        self.entry(name)?.gates.get(replica).cloned()
    }

    fn entry(&self, name: &str) -> Option<&ModelEntry> {
        self.models.iter().find(|m| m.name == name)
    }

    /// Routes `request` to a replica of `name`: the weighted-round-robin
    /// pick first, then spillover through the remaining replicas when it is
    /// full. The returned channel yields the task's [`TaskResult`].
    ///
    /// # Errors
    ///
    /// [`RouteError::UnknownModel`] for an unregistered name;
    /// [`RouteError::Shed`] when every replica refused with `QueueFull`
    /// (the explicit 429-style outcome); [`RouteError::Closed`] when the
    /// pools are shutting down.
    pub fn submit(
        &self,
        name: &str,
        request: InferenceRequest,
    ) -> Result<Receiver<TaskResult>, RouteError> {
        let Some(entry) = self.entry(name) else {
            return Err(RouteError::UnknownModel);
        };
        let slot = entry.cursor.fetch_add(1, Ordering::Relaxed) as usize % entry.schedule.len();
        let first = entry.schedule[slot] as usize;
        let n = entry.replicas.len();
        let mut closed = false;
        // The scheduled replica, then the others in ring order: a full
        // queue on one replica spills to its siblings before shedding.
        // Requests are cheap to clone (the tensor buffer is the payload and
        // spillover is the cold path).
        for offset in 0..n {
            let idx = (first + offset) % n;
            match entry.replicas[idx].submit(request.clone()) {
                Ok(rx) => {
                    entry.routed.fetch_add(1, Ordering::Relaxed);
                    return Ok(rx);
                }
                Err(SubmitError::QueueFull) => {}
                Err(SubmitError::WorkerGone) => closed = true,
            }
        }
        if closed {
            return Err(RouteError::Closed);
        }
        entry.shed_queue_full.fetch_add(1, Ordering::Relaxed);
        trace::instant(Category::Queue, "route_shed", Args::none());
        Err(RouteError::Shed)
    }

    /// Registry-level routing counters for `name`.
    pub fn route_stats(&self, name: &str) -> Option<RouteStats> {
        self.entry(name).map(|m| RouteStats {
            routed: m.routed.load(Ordering::Relaxed),
            shed_queue_full: m.shed_queue_full.load(Ordering::Relaxed),
        })
    }

    /// The metrics snapshot of one replica of `name` — the unmerged view,
    /// for per-replica dashboards and routing-distribution checks.
    pub fn replica_snapshot(&self, name: &str, replica: usize) -> Option<MetricsSnapshot> {
        let entry = self.entry(name)?;
        Some(entry.replicas.get(replica)?.metrics().snapshot())
    }

    /// The merged metrics snapshot of every replica of `name` (see
    /// [`MetricsSnapshot::merge`] for per-field semantics).
    pub fn model_snapshot(&self, name: &str) -> Option<MetricsSnapshot> {
        let entry = self.entry(name)?;
        let snaps: Vec<MetricsSnapshot> = entry
            .replicas
            .iter()
            .map(|p| p.metrics().snapshot())
            .collect();
        Some(MetricsSnapshot::merged(snaps.iter()))
    }

    /// The merged snapshot across every model and replica — the fleet view.
    pub fn aggregate_snapshot(&self) -> MetricsSnapshot {
        let snaps: Vec<MetricsSnapshot> = self
            .models
            .iter()
            .flat_map(|m| m.replicas.iter().map(|p| p.metrics().snapshot()))
            .collect();
        MetricsSnapshot::merged(snaps.iter())
    }

    /// One Prometheus exposition for the whole registry: every serving
    /// series labeled `model="<name>"` (headers emitted once per family),
    /// plus registry-level routing counters.
    pub fn to_prom_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::with_capacity(4096 * self.models.len().max(1));
        for (i, m) in self.models.iter().enumerate() {
            let snap = self.model_snapshot(&m.name).expect("registered model");
            snap.write_prom_into(&mut out, &[("model", m.name.as_str())], i == 0);
        }
        let _ = writeln!(
            out,
            "# HELP einet_route_requests_total Logical requests accepted by some replica."
        );
        let _ = writeln!(out, "# TYPE einet_route_requests_total counter");
        for m in &self.models {
            let _ = writeln!(
                out,
                "einet_route_requests_total{{model=\"{}\"}} {}",
                m.name,
                m.routed.load(Ordering::Relaxed)
            );
        }
        let _ = writeln!(
            out,
            "# HELP einet_route_shed_total Logical requests shed with every replica at capacity."
        );
        let _ = writeln!(out, "# TYPE einet_route_shed_total counter");
        for m in &self.models {
            let _ = writeln!(
                out,
                "einet_route_shed_total{{model=\"{}\"}} {}",
                m.name,
                m.shed_queue_full.load(Ordering::Relaxed)
            );
        }
        out
    }

    /// Shuts every pool down: stops admissions, drains queued tasks (their
    /// replies still arrive) and joins every worker.
    pub fn shutdown(self) {
        for m in self.models {
            for pool in m.replicas {
                pool.shutdown();
            }
        }
    }
}

impl std::fmt::Debug for ModelRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ModelRegistry")
            .field("models", &self.model_names())
            .finish()
    }
}

/// Smooth weighted round-robin: a schedule of `Σ weights` slots where
/// replica `i` appears `weights[i]` times, interleaved (the classic
/// nginx-style algorithm), so bursts to one replica are avoided even with
/// skewed weights.
fn smooth_wrr_schedule(weights: &[u32]) -> Vec<u32> {
    let total: i64 = weights.iter().map(|&w| i64::from(w)).sum();
    let mut credit = vec![0i64; weights.len()];
    let mut schedule = Vec::with_capacity(total as usize);
    for _ in 0..total {
        for (c, &w) in credit.iter_mut().zip(weights) {
            *c += i64::from(w);
        }
        let best = credit
            .iter()
            .enumerate()
            .max_by_key(|&(i, &c)| (c, std::cmp::Reverse(i)))
            .map(|(i, _)| i)
            .expect("non-empty weights");
        credit[best] -= total;
        schedule.push(best as u32);
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smooth_wrr_interleaves_rather_than_bursts() {
        assert_eq!(smooth_wrr_schedule(&[1, 1]), vec![0, 1]);
        // Weight 3:1 → a appears 3 times in 4 slots, never 3 in a row.
        let s = smooth_wrr_schedule(&[3, 1]);
        assert_eq!(s.len(), 4);
        assert_eq!(s.iter().filter(|&&r| r == 0).count(), 3);
        // The classic smooth-WRR order: a a b a.
        assert_eq!(s, vec![0, 0, 1, 0]);
        // 5:1:1 spreads the heavy replica across the cycle.
        let s = smooth_wrr_schedule(&[5, 1, 1]);
        assert_eq!(s.len(), 7);
        assert_eq!(s.iter().filter(|&&r| r == 0).count(), 5);
        assert_ne!(&s[0..3], &[0, 0, 0], "no opening burst");
    }
}
