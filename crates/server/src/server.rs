//! The TCP ingest loop: line-oriented JSON over plain `std::net`.

use std::io::{BufRead, BufReader, ErrorKind, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use einet_edge::ServeMetrics;
use einet_trace::{self as trace, Args, Category, TraceContext};

use crate::registry::ModelRegistry;
use crate::wire;

/// How often a blocked connection reader wakes up to check for shutdown.
const READ_POLL: Duration = Duration::from_millis(200);

/// A running TCP front-end over a shared [`ModelRegistry`].
///
/// One thread accepts connections; each connection gets its own thread
/// reading one JSON request per line and writing one JSON response per
/// line, in order. Responses are synchronous per connection — clients that
/// want concurrency open several connections (the registry underneath is
/// lock-free either way).
///
/// Dropping the server (or calling [`Server::shutdown`]) stops the accept
/// loop and unblocks every connection thread; in-flight requests still get
/// their responses.
#[derive(Debug)]
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    metrics: Arc<ServeMetrics>,
    accept_handle: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an OS-assigned port; see
    /// [`Server::local_addr`]) and starts serving `registry`.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure.
    pub fn start(registry: Arc<ModelRegistry>, addr: &str) -> std::io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(ServeMetrics::new());
        let accept_stop = Arc::clone(&stop);
        let accept_metrics = Arc::clone(&metrics);
        let accept_handle = std::thread::spawn(move || {
            let mut conn_handles: Vec<JoinHandle<()>> = Vec::new();
            for stream in listener.incoming() {
                if accept_stop.load(Ordering::Acquire) {
                    break;
                }
                // A long-lived server churns through connections; joining
                // the finished readers here keeps the handle list bounded
                // by *open* connections instead of growing forever.
                let mut i = 0;
                while i < conn_handles.len() {
                    if conn_handles[i].is_finished() {
                        let _ = conn_handles.swap_remove(i).join();
                    } else {
                        i += 1;
                    }
                }
                let Ok(stream) = stream else { continue };
                let registry = Arc::clone(&registry);
                let stop = Arc::clone(&accept_stop);
                let metrics = Arc::clone(&accept_metrics);
                conn_handles.push(std::thread::spawn(move || {
                    metrics.conn_opened();
                    serve_connection(stream, &registry, &stop, &metrics);
                    metrics.conn_closed();
                }));
            }
            for h in conn_handles {
                let _ = h.join();
            }
        });
        Ok(Server {
            addr: local,
            stop,
            metrics,
            accept_handle: Some(accept_handle),
        })
    }

    /// The ingest metrics registry: `open_connections` and
    /// `inflight_requests` gauges live here (per-task counters stay on the
    /// model pools).
    pub fn metrics_handle(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// The bound address — what clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting, unblocks connection readers and joins the serving
    /// threads. The registry itself stays alive (shut it down separately).
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        // The accept loop blocks in `incoming()`; a throwaway local
        // connection wakes it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

fn serve_connection(
    stream: TcpStream,
    registry: &ModelRegistry,
    stop: &AtomicBool,
    metrics: &ServeMetrics,
) {
    // A read timeout turns the blocking reader into a poll loop so the
    // thread notices shutdown even on an idle connection.
    let _ = stream.set_read_timeout(Some(READ_POLL));
    // The response is written as payload + newline — two small writes. With
    // Nagle on, the trailing newline can stall ~40 ms behind a delayed ACK,
    // which would be charged to the wire stage of every traced request.
    let _ = stream.set_nodelay(true);
    let mut writer = match stream.try_clone() {
        Ok(w) => w,
        Err(_) => return,
    };
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    while !stop.load(Ordering::Acquire) {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) => break, // client closed
            Ok(_) => {
                let trimmed = line.trim();
                if trimmed.is_empty() {
                    continue;
                }
                metrics.inflight_started();
                let (response, trace_id) = handle_line(trimmed, registry);
                metrics.inflight_finished();
                let write_started = Instant::now();
                if writer.write_all(response.as_bytes()).is_err()
                    || writer.write_all(b"\n").is_err()
                {
                    break;
                }
                let _ = writer.flush();
                trace::complete_span(
                    Category::Queue,
                    "reply",
                    write_started,
                    Args::one("trace", trace_id),
                );
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue; // poll tick: re-check the stop flag
            }
            Err(_) => break,
        }
    }
}

/// Parses, routes and waits for one request; always returns a response
/// line (never hangs up without answering a parsed request) plus the
/// request's trace id (0 when even salvage found none).
fn handle_line(line: &str, registry: &ModelRegistry) -> (String, u64) {
    let ingest_started = Instant::now();
    let parsed = match wire::parse_request(line) {
        Ok(p) => p,
        Err(e) => {
            // Best effort: salvage the ids for correlation even when the
            // request is rejected, and give a traced reject its flow so
            // the distributed reconciler still joins it.
            let (id, trace_id) = wire::salvage_ids(line);
            if trace_id != 0 {
                trace::flow_start(Category::Service, "task_flow", trace_id);
                trace::flow_end(Category::Service, "task_flow", trace_id);
            }
            return (wire::render_bad_request(id, &e, trace_id), trace_id);
        }
    };
    // Adopt the client's context or mint a fresh root: legacy clients
    // without the wire field still get fully-traced server-side flows.
    let ctx = parsed.trace.unwrap_or_else(TraceContext::root);
    // The ingest span covers framing + routing only; the wait for the
    // worker's answer is the task's own queue/service time, not ingest.
    let submitted = registry.submit(&parsed.model, parsed.request.with_trace(ctx.id));
    trace::complete_span(
        Category::Queue,
        "ingest",
        ingest_started,
        Args::two("req", parsed.id, "trace", ctx.id),
    );
    let response = match submitted {
        Ok(reply) => match reply.recv() {
            Ok(Ok(outcome)) => wire::render_outcome(parsed.id, &outcome, ctx.id),
            // A worker panic on this task, or a dropped reply channel —
            // either way the task died inside the server.
            Ok(Err(_)) | Err(_) => wire::render_worker_crashed(parsed.id, ctx.id),
        },
        Err(err) => wire::render_route_error(parsed.id, err, ctx.id),
    };
    (response, ctx.id)
}
