//! Minimal readiness-notification FFI for the reactor.
//!
//! The workspace takes no external dependencies, so this module declares
//! the handful of libc symbols the reactor needs (`std` already links
//! libc, so they resolve at link time) and wraps them in a safe
//! [`Poller`] with two backends:
//!
//! * **epoll** — O(ready) wakeups, the production path on Linux;
//! * **poll(2)** — the portable fallback, also selectable explicitly with
//!   `EINET_REACTOR_BACKEND=poll` so both paths stay tested.
//!
//! All `unsafe` in the crate lives here, confined to the raw syscall
//! boundary; everything above it works with owned fds and checked
//! results.

#![allow(unsafe_code)]

use std::collections::HashMap;
use std::io;
use std::os::unix::io::RawFd;
use std::time::Duration;

// --- raw declarations ----------------------------------------------------

/// Matches the kernel's `struct epoll_event`. On x86_64 the kernel ABI
/// packs the 12-byte struct (u32 events + u64 data with no padding);
/// elsewhere natural alignment matches the kernel layout.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy)]
struct EpollEvent {
    events: u32,
    data: u64,
}

/// Matches `struct pollfd`.
#[repr(C)]
#[derive(Clone, Copy)]
struct PollFd {
    fd: i32,
    events: i16,
    revents: i16,
}

extern "C" {
    fn epoll_create1(flags: i32) -> i32;
    fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
    fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout_ms: i32) -> i32;
    fn poll(fds: *mut PollFd, nfds: u64, timeout_ms: i32) -> i32;
    fn pipe2(fds: *mut i32, flags: i32) -> i32;
    fn close(fd: i32) -> i32;
    fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    fn write(fd: i32, buf: *const u8, count: usize) -> isize;
}

const EPOLL_CLOEXEC: i32 = 0o2000000;
const EPOLL_CTL_ADD: i32 = 1;
const EPOLL_CTL_DEL: i32 = 2;
const EPOLL_CTL_MOD: i32 = 3;
const EPOLLIN: u32 = 0x1;
const EPOLLOUT: u32 = 0x4;
const EPOLLERR: u32 = 0x8;
const EPOLLHUP: u32 = 0x10;
const EPOLLRDHUP: u32 = 0x2000;

const POLLIN: i16 = 0x1;
const POLLOUT: i16 = 0x4;
const POLLERR: i16 = 0x8;
const POLLHUP: i16 = 0x10;

const O_NONBLOCK: i32 = 0o4000;
const O_CLOEXEC: i32 = 0o2000000;

fn cvt(ret: i32) -> io::Result<i32> {
    if ret < 0 {
        Err(io::Error::last_os_error())
    } else {
        Ok(ret)
    }
}

// --- the safe surface ----------------------------------------------------

/// Which readiness directions a registration cares about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest, the steady state of an idle connection.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
}

/// One readiness event handed back by [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub(crate) struct Event {
    /// The token the fd was registered with.
    pub token: u64,
    /// Readable now (includes peer hang-up: a read will observe EOF).
    pub readable: bool,
    /// Writable now.
    pub writable: bool,
    /// Error or hang-up condition; the owner should read to EOF / close.
    pub hangup: bool,
}

/// A readiness poller over raw fds: epoll when available, poll(2)
/// otherwise (or when forced via `EINET_REACTOR_BACKEND=poll`).
#[derive(Debug)]
pub(crate) enum Poller {
    Epoll {
        epfd: RawFd,
    },
    Poll {
        fds: HashMap<RawFd, (u64, Interest)>,
    },
}

impl Poller {
    /// Opens the preferred backend.
    pub fn new() -> io::Result<Poller> {
        let forced_poll = std::env::var("EINET_REACTOR_BACKEND")
            .map(|v| v.eq_ignore_ascii_case("poll"))
            .unwrap_or(false);
        if !forced_poll {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd >= 0 {
                return Ok(Poller::Epoll { epfd });
            }
        }
        Ok(Poller::Poll {
            fds: HashMap::new(),
        })
    }

    /// A short name for logs: which backend ended up active.
    pub fn backend_name(&self) -> &'static str {
        match self {
            Poller::Epoll { .. } => "epoll",
            Poller::Poll { .. } => "poll",
        }
    }

    fn epoll_mask(interest: Interest) -> u32 {
        let mut mask = EPOLLRDHUP;
        if interest.readable {
            mask |= EPOLLIN;
        }
        if interest.writable {
            mask |= EPOLLOUT;
        }
        mask
    }

    /// Registers `fd` under `token` with the given interest.
    pub fn add(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            Poller::Epoll { epfd } => {
                let mut ev = EpollEvent {
                    events: Self::epoll_mask(interest),
                    data: token,
                };
                cvt(unsafe { epoll_ctl(*epfd, EPOLL_CTL_ADD, fd, &mut ev) }).map(|_| ())
            }
            Poller::Poll { fds } => {
                fds.insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    /// Changes the interest (and token) of an already-registered fd.
    pub fn modify(&mut self, fd: RawFd, token: u64, interest: Interest) -> io::Result<()> {
        match self {
            Poller::Epoll { epfd } => {
                let mut ev = EpollEvent {
                    events: Self::epoll_mask(interest),
                    data: token,
                };
                cvt(unsafe { epoll_ctl(*epfd, EPOLL_CTL_MOD, fd, &mut ev) }).map(|_| ())
            }
            Poller::Poll { fds } => {
                fds.insert(fd, (token, interest));
                Ok(())
            }
        }
    }

    /// Removes an fd from the poller. Safe to call right before closing it.
    pub fn delete(&mut self, fd: RawFd) -> io::Result<()> {
        match self {
            Poller::Epoll { epfd } => {
                let mut ev = EpollEvent { events: 0, data: 0 };
                cvt(unsafe { epoll_ctl(*epfd, EPOLL_CTL_DEL, fd, &mut ev) }).map(|_| ())
            }
            Poller::Poll { fds } => {
                fds.remove(&fd);
                Ok(())
            }
        }
    }

    /// Blocks for up to `timeout` (forever when `None`) and appends the
    /// ready events to `out`. Spurious wakeups (no events) are fine.
    pub fn wait(&mut self, out: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
        let timeout_ms: i32 = match timeout {
            None => -1,
            Some(d) => i32::try_from(d.as_millis()).unwrap_or(i32::MAX).max(0),
        };
        match self {
            Poller::Epoll { epfd } => {
                let mut buf = [EpollEvent { events: 0, data: 0 }; 256];
                let n = loop {
                    let n = unsafe {
                        epoll_wait(*epfd, buf.as_mut_ptr(), buf.len() as i32, timeout_ms)
                    };
                    if n >= 0 {
                        break n as usize;
                    }
                    let err = io::Error::last_os_error();
                    if err.kind() != io::ErrorKind::Interrupted {
                        return Err(err);
                    }
                };
                for ev in &buf[..n] {
                    // Copy out of the (possibly packed) struct before use.
                    let events = ev.events;
                    let token = ev.data;
                    out.push(Event {
                        token,
                        readable: events & (EPOLLIN | EPOLLRDHUP) != 0,
                        writable: events & EPOLLOUT != 0,
                        hangup: events & (EPOLLERR | EPOLLHUP) != 0,
                    });
                }
                Ok(())
            }
            Poller::Poll { fds } => {
                let mut pollfds: Vec<PollFd> = Vec::with_capacity(fds.len());
                let mut tokens: Vec<u64> = Vec::with_capacity(fds.len());
                for (&fd, &(token, interest)) in fds.iter() {
                    let mut events = 0i16;
                    if interest.readable {
                        events |= POLLIN;
                    }
                    if interest.writable {
                        events |= POLLOUT;
                    }
                    pollfds.push(PollFd {
                        fd,
                        events,
                        revents: 0,
                    });
                    tokens.push(token);
                }
                let n = loop {
                    let n = unsafe { poll(pollfds.as_mut_ptr(), pollfds.len() as u64, timeout_ms) };
                    if n >= 0 {
                        break n;
                    }
                    let err = io::Error::last_os_error();
                    if err.kind() != io::ErrorKind::Interrupted {
                        return Err(err);
                    }
                };
                if n > 0 {
                    for (pfd, &token) in pollfds.iter().zip(&tokens) {
                        if pfd.revents == 0 {
                            continue;
                        }
                        out.push(Event {
                            token,
                            readable: pfd.revents & (POLLIN | POLLHUP) != 0,
                            writable: pfd.revents & POLLOUT != 0,
                            hangup: pfd.revents & (POLLERR | POLLHUP) != 0,
                        });
                    }
                }
                Ok(())
            }
        }
    }
}

impl Drop for Poller {
    fn drop(&mut self) {
        if let Poller::Epoll { epfd } = self {
            unsafe {
                close(*epfd);
            }
        }
    }
}

/// A self-pipe for waking the reactor from other threads: completion
/// callbacks and `shutdown` write one byte; the reactor drains it.
#[derive(Debug)]
pub(crate) struct WakePipe {
    read_fd: RawFd,
    write_fd: RawFd,
}

impl WakePipe {
    /// Opens a non-blocking close-on-exec pipe.
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0i32; 2];
        cvt(unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) })?;
        Ok(WakePipe {
            read_fd: fds[0],
            write_fd: fds[1],
        })
    }

    /// The fd to register for read-readiness in the poller.
    pub fn read_fd(&self) -> RawFd {
        self.read_fd
    }

    /// Wakes the poller. A full pipe is success — the reactor is already
    /// guaranteed a wakeup it has not consumed yet.
    pub fn wake(&self) {
        let byte = 1u8;
        unsafe {
            let _ = write(self.write_fd, &byte, 1);
        }
    }

    /// Drains every pending wake byte (called by the reactor on wakeup).
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        loop {
            let n = unsafe { read(self.read_fd, buf.as_mut_ptr(), buf.len()) };
            if n <= 0 {
                break;
            }
        }
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        unsafe {
            close(self.read_fd);
            close(self.write_fd);
        }
    }
}

// `WakePipe` is two raw fds; writes from any thread are atomic at this
// size and the two ends are used lock-free.
unsafe impl Send for WakePipe {}
unsafe impl Sync for WakePipe {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read as _, Write as _};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    fn poller_pair() -> Vec<Poller> {
        // Exercise both backends regardless of the environment.
        vec![
            Poller::Epoll {
                epfd: cvt(unsafe { epoll_create1(EPOLL_CLOEXEC) }).unwrap(),
            },
            Poller::Poll {
                fds: HashMap::new(),
            },
        ]
    }

    #[test]
    fn both_backends_report_read_readiness() {
        for mut poller in poller_pair() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let mut client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (mut server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();
            poller.add(server.as_raw_fd(), 42, Interest::READ).unwrap();
            let mut events = Vec::new();
            // Nothing to read yet: a zero timeout returns empty.
            poller
                .wait(&mut events, Some(Duration::from_millis(0)))
                .unwrap();
            assert!(
                events.is_empty(),
                "{}: no data, no event",
                poller.backend_name()
            );
            client.write_all(b"ping").unwrap();
            client.flush().unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(1000)))
                .unwrap();
            assert_eq!(events.len(), 1, "{}", poller.backend_name());
            assert_eq!(events[0].token, 42);
            assert!(events[0].readable);
            let mut buf = [0u8; 8];
            let n = server.read(&mut buf).unwrap();
            assert_eq!(&buf[..n], b"ping");
            poller.delete(server.as_raw_fd()).unwrap();
        }
    }

    #[test]
    fn modify_rearms_write_interest() {
        for mut poller in poller_pair() {
            let listener = TcpListener::bind("127.0.0.1:0").unwrap();
            let client = TcpStream::connect(listener.local_addr().unwrap()).unwrap();
            let (server, _) = listener.accept().unwrap();
            server.set_nonblocking(true).unwrap();
            poller.add(server.as_raw_fd(), 7, Interest::READ).unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(0)))
                .unwrap();
            assert!(events.is_empty(), "{}", poller.backend_name());
            // An idle socket is immediately writable once we ask.
            poller
                .modify(
                    server.as_raw_fd(),
                    7,
                    Interest {
                        readable: true,
                        writable: true,
                    },
                )
                .unwrap();
            poller
                .wait(&mut events, Some(Duration::from_millis(1000)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 7 && e.writable),
                "{}: writable after modify",
                poller.backend_name()
            );
            drop(client);
        }
    }

    #[test]
    fn wake_pipe_wakes_and_drains() {
        for mut poller in poller_pair() {
            let pipe = WakePipe::new().unwrap();
            poller.add(pipe.read_fd(), 1, Interest::READ).unwrap();
            let mut events = Vec::new();
            poller
                .wait(&mut events, Some(Duration::from_millis(0)))
                .unwrap();
            assert!(events.is_empty(), "{}", poller.backend_name());
            pipe.wake();
            pipe.wake();
            poller
                .wait(&mut events, Some(Duration::from_millis(1000)))
                .unwrap();
            assert!(
                events.iter().any(|e| e.token == 1 && e.readable),
                "{}",
                poller.backend_name()
            );
            pipe.drain();
            events.clear();
            poller
                .wait(&mut events, Some(Duration::from_millis(0)))
                .unwrap();
            assert!(
                events.is_empty(),
                "{}: drained pipe is quiet",
                poller.backend_name()
            );
        }
    }
}
