//! The readiness-driven ingest front-end: one reactor thread, thousands of
//! connections, multiplexed in-flight requests.
//!
//! Where [`crate::Server`] spends a thread per connection parked in
//! `read_line` / `reply.recv()`, the reactor keeps **every** connection on
//! a single thread behind an epoll/poll [`crate::sys::Poller`]:
//!
//! * non-blocking accept with a connection cap;
//! * per-connection state machines — a read buffer framed on `\n`, a write
//!   buffer flushed opportunistically and re-armed on `EPOLLOUT` only while
//!   non-empty (backpressure: a connection whose write buffer is over the
//!   limit stops being read until it drains);
//! * request multiplexing — a client may pipeline any number of requests;
//!   each carries its own `id`, completions come back from the worker pools
//!   through a completion channel + wake pipe and are written **in
//!   completion order**, not submission order;
//! * an idle timeout wheel (1 s granularity, lazy re-insert) that closes
//!   connections quiet for longer than the configured timeout;
//! * explicit wake-pipe shutdown with graceful drain: stop accepting,
//!   answer everything in flight, flush every write buffer, then close —
//!   bounded by a drain timeout.
//!
//! The executor side uses [`einet_edge::ExecutorPool::submit_with`]: a
//! completion callback instead of a parked thread per request, so in-flight
//! requests cost a queue slot, not a stack.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use einet_edge::ServeMetrics;
use einet_trace::{self as trace, Args, Category, TraceContext};

use crate::registry::ModelRegistry;
use crate::sys::{Event, Interest, Poller, WakePipe};
use crate::wire;

/// Token of the listening socket.
const TOKEN_LISTENER: u64 = u64::MAX;
/// Token of the wake pipe's read end.
const TOKEN_WAKE: u64 = u64::MAX - 1;

/// Sizing and policy knobs for a [`ReactorServer`].
#[derive(Debug, Clone)]
pub struct ReactorConfig {
    /// Most connections held open at once; beyond it new accepts are closed
    /// immediately (the client sees a reset, the cheapest honest signal).
    pub max_conns: usize,
    /// Close connections with no traffic for this long. `ZERO` disables
    /// the idle wheel.
    pub idle_timeout: Duration,
    /// Longest accepted request line; a connection exceeding it without a
    /// newline gets a 400 and is closed (it cannot be re-framed).
    pub max_line_bytes: usize,
    /// Stop reading from a connection whose unsent responses exceed this
    /// many bytes, until the peer drains them (per-connection backpressure).
    pub write_buf_limit: usize,
    /// Upper bound on the graceful drain at shutdown; connections still
    /// busy past it are closed anyway.
    pub drain_timeout: Duration,
}

impl Default for ReactorConfig {
    fn default() -> Self {
        ReactorConfig {
            max_conns: 8192,
            idle_timeout: Duration::ZERO,
            max_line_bytes: 256 * 1024,
            write_buf_limit: 1024 * 1024,
            drain_timeout: Duration::from_secs(5),
        }
    }
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet framed into a full line.
    read_buf: Vec<u8>,
    /// Rendered responses not yet accepted by the socket.
    write_buf: Vec<u8>,
    /// Consumed prefix of `write_buf` (compacted when it grows).
    write_pos: usize,
    /// Requests submitted to a pool whose completions have not come back.
    inflight: usize,
    /// Interest currently registered with the poller.
    interest: Interest,
    /// Peer sent EOF: close once everything owed has been written.
    peer_closed: bool,
    /// Last read/write activity, for the idle wheel.
    last_activity: Instant,
}

/// A running readiness-driven front-end over a shared [`ModelRegistry`].
///
/// Functionally equivalent to [`crate::Server`] — same wire format, same
/// registry — but holds every connection on one reactor thread and allows
/// clients to pipeline: responses to multiplexed requests return in
/// completion order, correlated by `id`.
#[derive(Debug)]
pub struct ReactorServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    waker: Arc<WakePipe>,
    metrics: Arc<ServeMetrics>,
    backend: &'static str,
    handle: Option<JoinHandle<()>>,
}

impl ReactorServer {
    /// Binds `addr` (port 0 for an OS-assigned port) and starts the
    /// reactor thread serving `registry`.
    ///
    /// # Errors
    ///
    /// Propagates bind, poller and wake-pipe creation failures.
    pub fn start(
        registry: Arc<ModelRegistry>,
        addr: &str,
        cfg: ReactorConfig,
    ) -> io::Result<ReactorServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local = listener.local_addr()?;
        let mut poller = Poller::new()?;
        let backend = poller.backend_name();
        let waker = Arc::new(WakePipe::new()?);
        poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)?;
        poller.add(waker.read_fd(), TOKEN_WAKE, Interest::READ)?;
        let metrics = Arc::new(ServeMetrics::new());
        let stop = Arc::new(AtomicBool::new(false));
        let reactor = Reactor {
            registry,
            listener,
            poller,
            waker: Arc::clone(&waker),
            metrics: Arc::clone(&metrics),
            stop: Arc::clone(&stop),
            cfg,
            conns: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            open: 0,
            inflight_total: 0,
            wheel: Vec::new(),
            wheel_cursor: 0,
            wheel_epoch: Instant::now(),
        };
        let handle = std::thread::Builder::new()
            .name("einet-reactor".to_string())
            .spawn(move || reactor.run())
            .expect("spawn reactor thread");
        Ok(ReactorServer {
            addr: local,
            stop,
            waker,
            metrics,
            backend,
            handle: Some(handle),
        })
    }

    /// The bound address — what clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Which readiness backend the poller selected (`"epoll"` or `"poll"`).
    pub fn backend(&self) -> &'static str {
        self.backend
    }

    /// The ingest metrics registry: `open_connections` and
    /// `inflight_requests` gauges live here (per-task counters stay on the
    /// model pools).
    pub fn metrics_handle(&self) -> Arc<ServeMetrics> {
        Arc::clone(&self.metrics)
    }

    /// Stops accepting, answers everything in flight, flushes and closes
    /// every connection (bounded by [`ReactorConfig::drain_timeout`]), and
    /// joins the reactor thread. The registry stays alive.
    pub fn shutdown(mut self) {
        self.shutdown_in_place();
    }

    fn shutdown_in_place(&mut self) {
        if self.stop.swap(true, Ordering::AcqRel) {
            return;
        }
        self.waker.wake();
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

impl Drop for ReactorServer {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

/// What a completion callback sends back to the reactor thread: the
/// connection token, the fully rendered response line, and the request's
/// trace id (for the reply-write span and drop accounting).
type Completion = (u64, String, u64);

struct Reactor {
    registry: Arc<ModelRegistry>,
    listener: TcpListener,
    poller: Poller,
    waker: Arc<WakePipe>,
    metrics: Arc<ServeMetrics>,
    stop: Arc<AtomicBool>,
    cfg: ReactorConfig,
    /// Slab of connections; tokens are `gen << 32 | slot`.
    conns: Vec<Option<Conn>>,
    /// Per-slot generation, bumped on close so stale completions and stale
    /// poller events never touch a recycled slot.
    gens: Vec<u32>,
    free: Vec<u32>,
    open: usize,
    /// Callbacks outstanding across all connections (including ones whose
    /// connection already died); drained to zero before shutdown returns.
    inflight_total: usize,
    /// Idle wheel: one slot per second, entries checked lazily.
    wheel: Vec<Vec<(u32, u32)>>,
    wheel_cursor: usize,
    wheel_epoch: Instant,
}

impl Reactor {
    fn token(&self, slot: u32) -> u64 {
        (u64::from(self.gens[slot as usize]) << 32) | u64::from(slot)
    }

    fn run(mut self) {
        let (tx, rx) = channel::<Completion>();
        if !self.cfg.idle_timeout.is_zero() {
            // One wheel slot per second of timeout, plus slack so an entry
            // re-armed "now + timeout" never lands on the firing slot.
            let slots = self.cfg.idle_timeout.as_secs() as usize + 2;
            self.wheel = vec![Vec::new(); slots.max(2)];
        }
        let mut events: Vec<Event> = Vec::new();
        let mut drain_started: Option<Instant> = None;
        loop {
            events.clear();
            let timeout = if drain_started.is_some() {
                Duration::from_millis(10)
            } else {
                Duration::from_millis(250)
            };
            let _ = self.poller.wait(&mut events, Some(timeout));
            for &ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(&tx),
                    TOKEN_WAKE => self.waker.drain(),
                    token => self.conn_ready(token, ev, &tx),
                }
            }
            self.drain_completions(&rx);
            self.tick_idle_wheel();
            if self.stop.load(Ordering::Acquire) && drain_started.is_none() {
                drain_started = Some(Instant::now());
                // Stop accepting; the listener closes when the reactor
                // returns. Connections live on to be drained.
                let _ = self.poller.delete(self.listener.as_raw_fd());
                // Idle connections owe nothing: close them now.
                self.close_drained_conns();
            }
            if let Some(started) = drain_started {
                self.close_drained_conns();
                let drained = self.inflight_total == 0 && self.open == 0;
                if drained || started.elapsed() >= self.cfg.drain_timeout {
                    break;
                }
            }
        }
        // Force-close whatever outlived the drain timeout.
        for slot in 0..self.conns.len() as u32 {
            if self.conns[slot as usize].is_some() {
                self.close_conn(slot);
            }
        }
    }

    /// Accepts until the listener would block.
    fn accept_ready(&mut self, tx: &Sender<Completion>) {
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if self.open >= self.cfg.max_conns || self.stop.load(Ordering::Acquire) {
                        drop(stream); // over cap (or draining): refuse
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    // Small line-framed responses must not sit in Nagle's
                    // buffer waiting for a delayed ACK; latency is the
                    // product here, so flush segments as they come.
                    let _ = stream.set_nodelay(true);
                    let slot = match self.free.pop() {
                        Some(s) => s,
                        None => {
                            self.conns.push(None);
                            self.gens.push(0);
                            (self.conns.len() - 1) as u32
                        }
                    };
                    let fd = stream.as_raw_fd();
                    let conn = Conn {
                        stream,
                        read_buf: Vec::new(),
                        write_buf: Vec::new(),
                        write_pos: 0,
                        inflight: 0,
                        interest: Interest::READ,
                        peer_closed: false,
                        last_activity: Instant::now(),
                    };
                    let token = self.token(slot);
                    if self.poller.add(fd, token, Interest::READ).is_err() {
                        self.free.push(slot);
                        continue;
                    }
                    self.conns[slot as usize] = Some(conn);
                    self.open += 1;
                    self.metrics.conn_opened();
                    self.wheel_insert(slot);
                    // Level-triggered readiness only reports what changes
                    // after registration; data that raced the accept is
                    // already there, so take one read pass now.
                    let ev = Event {
                        token,
                        readable: true,
                        writable: false,
                        hangup: false,
                    };
                    self.conn_ready(token, ev, tx);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
    }

    fn slot_of(&self, token: u64) -> Option<u32> {
        let slot = (token & u32::MAX as u64) as u32;
        let gen = (token >> 32) as u32;
        if (slot as usize) < self.conns.len()
            && self.gens[slot as usize] == gen
            && self.conns[slot as usize].is_some()
        {
            Some(slot)
        } else {
            None
        }
    }

    /// Handles readiness on one connection.
    fn conn_ready(&mut self, token: u64, ev: Event, tx: &Sender<Completion>) {
        let Some(slot) = self.slot_of(token) else {
            return; // stale event for a recycled slot
        };
        let mut close = false;
        if ev.writable {
            let conn = self.conns[slot as usize].as_mut().expect("live conn");
            conn.last_activity = Instant::now();
            close = flush_write(conn).is_err();
        }
        if !close && ev.readable {
            close = self.read_ready(slot, tx);
        }
        if !close && ev.hangup {
            let conn = self.conns[slot as usize].as_mut().expect("live conn");
            conn.peer_closed = true;
        }
        if !close {
            let conn = self.conns[slot as usize].as_ref().expect("live conn");
            // A closed peer is owed only what is still in flight or
            // buffered; when nothing is, the connection is done.
            close = conn.peer_closed && conn.inflight == 0 && !has_pending(conn);
        }
        if close {
            self.close_conn(slot);
        } else {
            self.update_interest(slot);
        }
    }

    /// Reads until the socket would block, framing and serving every
    /// complete line. Returns `true` when the connection must close.
    fn read_ready(&mut self, slot: u32, tx: &Sender<Completion>) -> bool {
        let mut chunk = [0u8; 16 * 1024];
        loop {
            // Respect backpressure mid-burst, not just between events: stop
            // pulling new requests while this connection's responses back up.
            {
                let conn = self.conns[slot as usize].as_ref().expect("live conn");
                if pending_bytes(conn) >= self.cfg.write_buf_limit {
                    return false;
                }
            }
            let n = {
                let conn = self.conns[slot as usize].as_mut().expect("live conn");
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.peer_closed = true;
                        break;
                    }
                    Ok(n) => {
                        conn.last_activity = Instant::now();
                        conn.read_buf.extend_from_slice(&chunk[..n]);
                        n
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => return true,
                }
            };
            debug_assert!(n > 0);
            if self.serve_buffered_lines(slot, tx) {
                return true;
            }
        }
        self.serve_buffered_lines(slot, tx)
    }

    /// Frames `read_buf` on newlines and serves each complete line.
    /// Returns `true` when the connection must close (unframeable input).
    fn serve_buffered_lines(&mut self, slot: u32, tx: &Sender<Completion>) -> bool {
        loop {
            let line = {
                let conn = self.conns[slot as usize].as_mut().expect("live conn");
                let Some(nl) = conn.read_buf.iter().position(|&b| b == b'\n') else {
                    if conn.read_buf.len() > self.cfg.max_line_bytes {
                        // No newline within the cap: the stream cannot be
                        // re-framed. Answer 400 and hang up.
                        let line = wire::render_bad_request(0, "request line too long", 0);
                        queue_response(conn, &line);
                        let _ = flush_write(conn);
                        return true;
                    }
                    return false;
                };
                let mut line: Vec<u8> = conn.read_buf.drain(..=nl).collect();
                line.pop(); // the newline
                line
            };
            let Ok(text) = std::str::from_utf8(&line) else {
                let conn = self.conns[slot as usize].as_mut().expect("live conn");
                queue_response(
                    conn,
                    &wire::render_bad_request(0, "request is not UTF-8", 0),
                );
                continue;
            };
            let text = text.trim();
            if text.is_empty() {
                continue;
            }
            self.serve_line(slot, text, tx);
        }
    }

    /// Parses and routes one request line; inline errors are answered
    /// immediately, accepted requests complete asynchronously.
    fn serve_line(&mut self, slot: u32, line: &str, tx: &Sender<Completion>) {
        self.metrics.inflight_started();
        let ingest_started = Instant::now();
        let parsed = match wire::parse_request(line) {
            Ok(p) => p,
            Err(e) => {
                // Best effort: salvage the ids for correlation even when
                // the request is rejected; a traced reject still gets a
                // balanced flow so the reconciler can join its 400.
                let (id, trace_id) = wire::salvage_ids(line);
                if trace_id != 0 {
                    trace::flow_start(Category::Service, "task_flow", trace_id);
                    trace::flow_end(Category::Service, "task_flow", trace_id);
                }
                self.respond_inline(slot, &wire::render_bad_request(id, &e, trace_id), trace_id);
                return;
            }
        };
        // Adopt the client's context or mint a fresh root: legacy clients
        // without the wire field still get fully-traced server-side flows.
        let ctx = parsed.trace.unwrap_or_else(TraceContext::root);
        let token = self.token(slot);
        let wire_id = parsed.id;
        let trace_id = ctx.id;
        let completions = tx.clone();
        let waker = Arc::clone(&self.waker);
        let on_complete = Box::new(move |result: einet_edge::TaskResult| {
            // Runs on the worker thread: render there (cheap), hand the
            // bytes to the reactor, wake it. A dead reactor is fine — the
            // send just fails.
            let line = match result {
                Ok(outcome) => wire::render_outcome(wire_id, &outcome, trace_id),
                Err(_) => wire::render_worker_crashed(wire_id, trace_id),
            };
            let _ = completions.send((token, line, trace_id));
            waker.wake();
        });
        let submitted = self.registry.submit_callback(
            &parsed.model,
            parsed.request.with_trace(trace_id),
            on_complete,
        );
        // The ingest span covers framing + routing; the asynchronous wait
        // for the completion is the task's own queue/service time.
        trace::complete_span(
            Category::Queue,
            "ingest",
            ingest_started,
            Args::two("req", wire_id, "trace", trace_id),
        );
        match submitted {
            Ok(_task_id) => {
                self.inflight_total += 1;
                let conn = self.conns[slot as usize].as_mut().expect("live conn");
                conn.inflight += 1;
            }
            Err((err, _cb)) => {
                self.respond_inline(
                    slot,
                    &wire::render_route_error(wire_id, err, trace_id),
                    trace_id,
                );
            }
        }
    }

    /// Queues an immediately-known response (parse/route error) and closes
    /// out its in-flight accounting.
    fn respond_inline(&mut self, slot: u32, line: &str, trace_id: u64) {
        let conn = self.conns[slot as usize].as_mut().expect("live conn");
        let write_started = Instant::now();
        queue_response(conn, line);
        let _ = flush_write(conn);
        trace::complete_span(
            Category::Queue,
            "reply",
            write_started,
            Args::one("trace", trace_id),
        );
        self.metrics.inflight_finished();
    }

    /// Applies every completion the workers have delivered: out-of-order
    /// responses queue onto their connection's write buffer.
    fn drain_completions(&mut self, rx: &Receiver<Completion>) {
        while let Ok((token, line, trace_id)) = rx.try_recv() {
            self.inflight_total -= 1;
            self.metrics.inflight_finished();
            let Some(slot) = self.slot_of(token) else {
                // The requester hung up before its answer. The task's flow
                // already ended on the worker, so balance holds; record the
                // undeliverable response for the reconciler.
                trace::instant(
                    Category::Queue,
                    "reply_dropped",
                    Args::one("trace", trace_id),
                );
                continue;
            };
            let conn = self.conns[slot as usize].as_mut().expect("live conn");
            conn.inflight -= 1;
            let write_started = Instant::now();
            queue_response(conn, &line);
            let close = flush_write(conn).is_err();
            trace::complete_span(
                Category::Queue,
                "reply",
                write_started,
                Args::one("trace", trace_id),
            );
            if close || (conn.peer_closed && conn.inflight == 0 && !has_pending(conn)) {
                self.close_conn(slot);
            } else {
                self.update_interest(slot);
            }
        }
    }

    /// Re-registers a connection when its desired interest changed:
    /// `EPOLLOUT` only while the write buffer is non-empty, `EPOLLIN`
    /// paused while the peer is too far behind on reads (backpressure).
    fn update_interest(&mut self, slot: u32) {
        let token = self.token(slot);
        let conn = self.conns[slot as usize].as_mut().expect("live conn");
        let want = Interest {
            readable: pending_bytes(conn) < self.cfg.write_buf_limit && !conn.peer_closed,
            writable: has_pending(conn),
        };
        if want != conn.interest {
            let fd = conn.stream.as_raw_fd();
            if self.poller.modify(fd, token, want).is_ok() {
                conn.interest = want;
            }
        }
    }

    fn close_conn(&mut self, slot: u32) {
        if let Some(conn) = self.conns[slot as usize].take() {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
            self.gens[slot as usize] = self.gens[slot as usize].wrapping_add(1);
            self.free.push(slot);
            self.open -= 1;
            self.metrics.conn_closed();
            // `conn.inflight` callbacks are still outstanding; their
            // completions will arrive, decrement `inflight_total`, and be
            // dropped at the stale-token check.
        }
    }

    /// During shutdown: close every connection that is owed nothing.
    fn close_drained_conns(&mut self) {
        for slot in 0..self.conns.len() as u32 {
            if let Some(conn) = self.conns[slot as usize].as_mut() {
                if conn.inflight == 0 && !has_pending(conn) {
                    // One last sweep so requests already buffered by the
                    // kernel are not silently dropped mid-drain.
                    let mut probe = [0u8; 1];
                    let quiet =
                        matches!(conn.stream.peek(&mut probe), Ok(0) | Err(_)) || conn.peer_closed;
                    if quiet {
                        self.close_conn(slot);
                    }
                }
            }
        }
    }

    // --- idle wheel -------------------------------------------------------

    /// Inserts a connection into the wheel slot where its timeout lands.
    fn wheel_insert(&mut self, slot: u32) {
        if self.wheel.is_empty() {
            return;
        }
        let conn = self.conns[slot as usize].as_ref().expect("live conn");
        let deadline = conn.last_activity + self.cfg.idle_timeout;
        let secs = deadline.duration_since(self.wheel_epoch).as_secs() as usize;
        let idx = secs % self.wheel.len();
        let gen = self.gens[slot as usize];
        self.wheel[idx].push((slot, gen));
    }

    /// Fires due wheel slots: entries whose connection was active since
    /// insertion are lazily re-armed at their new deadline; truly idle
    /// connections are closed.
    fn tick_idle_wheel(&mut self) {
        if self.wheel.is_empty() {
            return;
        }
        let now_slot = self.wheel_epoch.elapsed().as_secs() as usize % self.wheel.len();
        while self.wheel_cursor != now_slot {
            self.wheel_cursor = (self.wheel_cursor + 1) % self.wheel.len();
            let entries: Vec<(u32, u32)> = std::mem::take(&mut self.wheel[self.wheel_cursor]);
            for (slot, gen) in entries {
                if self.gens.get(slot as usize) != Some(&gen) {
                    continue; // connection already closed
                }
                let Some(conn) = self.conns[slot as usize].as_ref() else {
                    continue;
                };
                let idle_for = conn.last_activity.elapsed();
                if idle_for >= self.cfg.idle_timeout && conn.inflight == 0 && !has_pending(conn) {
                    trace::instant(Category::Queue, "idle_close", Args::none());
                    self.close_conn(slot);
                } else {
                    self.wheel_insert(slot);
                }
            }
        }
    }
}

/// Unsent response bytes on a connection.
fn pending_bytes(conn: &Conn) -> usize {
    conn.write_buf.len() - conn.write_pos
}

fn has_pending(conn: &Conn) -> bool {
    pending_bytes(conn) > 0
}

/// Appends one rendered response line to the write buffer.
fn queue_response(conn: &mut Conn, line: &str) {
    conn.write_buf.extend_from_slice(line.as_bytes());
    conn.write_buf.push(b'\n');
}

/// Writes as much of the buffer as the socket accepts. `Err` means the
/// connection is dead.
fn flush_write(conn: &mut Conn) -> io::Result<()> {
    while conn.write_pos < conn.write_buf.len() {
        match conn.stream.write(&conn.write_buf[conn.write_pos..]) {
            Ok(0) => return Err(io::Error::from(ErrorKind::WriteZero)),
            Ok(n) => {
                conn.write_pos += n;
                conn.last_activity = Instant::now();
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if conn.write_pos == conn.write_buf.len() {
        conn.write_buf.clear();
        conn.write_pos = 0;
    } else if conn.write_pos > 64 * 1024 {
        // Compact occasionally so a slow reader cannot pin a large prefix.
        conn.write_buf.drain(..conn.write_pos);
        conn.write_pos = 0;
    }
    Ok(())
}
