//! # einet-server
//!
//! The multi-tenant serving front-end over [`einet_edge::ExecutorPool`]:
//! what stands between "millions of users" and the elastic executor.
//!
//! * [`ModelRegistry`] owns every registered model: one pool per replica
//!   (replicas minted by cloning the trained [`einet_models::MultiExitNet`]),
//!   a smooth **weighted round-robin** schedule across replicas, spillover
//!   to sibling replicas when the scheduled one is at capacity, and an
//!   explicit [`RouteError::Shed`] only when *every* replica refuses —
//!   backpressure surfaces as a typed response, never as a blocked caller.
//! * [`Server`] is a dependency-free, line-oriented TCP/JSON ingest loop:
//!   one JSON request per line in, one JSON response per line out, thread
//!   per connection (see [`wire`] for the exact format). Queue-full and
//!   expired-in-queue sheds map to 429-style responses; a worker panic to a
//!   500; an unknown model to a 404.
//! * [`ReactorServer`] is the readiness-driven alternative: every
//!   connection multiplexed on **one** reactor thread behind an epoll shim
//!   (portable poll(2) fallback, see `sys`), clients may pipeline requests
//!   and responses return in completion order correlated by `id`.
//! * [`ReplicaScaler`] closes the loop from the rolling-window SLO metrics
//!   back to capacity: it grows a model's replica set when windowed SLO
//!   attainment degrades or queues stay deep, and shrinks it back (with
//!   hysteresis and cooldown) when the burst passes.
//! * Per-model [`einet_edge::ServeMetrics`] stay per-pool and are merged on
//!   demand ([`ModelRegistry::model_snapshot`]); the registry renders one
//!   Prometheus exposition with a `model` label per series
//!   ([`ModelRegistry::to_prom_text`]). Trace spans and cross-thread flows
//!   keep flowing from the pools, so `trace_check` reconciliation holds
//!   per model.
//!
//! # Example
//!
//! ```
//! use einet_server::{ModelRegistry, ModelSpec, Server};
//! use einet_edge::{InferenceRequest, PoolConfig, StaticSource};
//! use einet_models::{zoo, BranchSpec};
//! use einet_core::ExitPlan;
//! use einet_tensor::Tensor;
//!
//! let mut registry = ModelRegistry::new();
//! let net = zoo::b_alexnet([1, 16, 16], 10, &BranchSpec::paper_default(), 1);
//! registry.register(
//!     "alexnet",
//!     net,
//!     |_replica, _worker| Box::new(StaticSource::new(ExitPlan::full(3))),
//!     ModelSpec { pool: PoolConfig { workers: 1, ..PoolConfig::default() }, ..ModelSpec::default() },
//! );
//! let reply = registry
//!     .submit("alexnet", InferenceRequest::new(Tensor::zeros(&[1, 1, 16, 16])))
//!     .unwrap();
//! assert!(reply.recv().unwrap().unwrap().is_complete());
//! assert!(registry.model_snapshot("alexnet").unwrap().reconciles());
//! ```

// Unsafe is denied everywhere except the `sys` module, which owns the raw
// epoll/poll/pipe FFI (std links libc; no new dependencies).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod reactor;
mod registry;
mod server;
mod sys;
pub mod wire;

pub use reactor::{ReactorConfig, ReactorServer};
pub use registry::{ModelRegistry, ModelSpec, ReplicaScaler, RouteError, RouteStats, ScalerConfig};
pub use server::Server;
