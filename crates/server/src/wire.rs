//! The line-oriented JSON wire format.
//!
//! One request per line in, one response per line out. The format is
//! hand-parsed with the workspace's own JSON module (no external
//! dependencies), mirroring the trace exporter.
//!
//! # Request
//!
//! ```json
//! {"id": 7, "model": "alexnet", "deadline_ms": 50, "label": 3,
//!  "input": {"shape": [1, 1, 16, 16], "fill": 0.5}}
//! ```
//!
//! * `model` (string, required) — registered model name.
//! * `input.shape` (required) — `[1, c, h, w]`, one sample per request.
//! * `input.fill` *or* `input.data` (required, exclusive) — a constant
//!   fill value, or the full row-major element list (`c*h*w` values).
//! * `id` (optional, default 0) — echoed back so clients can pipeline and
//!   multiplex; round-trips verbatim within the JSON safe-integer range
//!   (≤ 2^53 — numbers are f64-backed, as in every JS-compatible parser).
//! * `deadline_ms` (optional) — admission-to-answer deadline.
//! * `label` (optional) — true class, enabling server-side accuracy
//!   accounting.
//! * `trace` (optional) — distributed-tracing context, an object
//!   `{"id": <trace id>, "parent": <span id>}` minted by the client (see
//!   [`einet_trace::TraceContext`]). The id keys the server-side
//!   `task_flow` events so the client and server streams join under one
//!   global id; a malformed context degrades to "absent" rather than a
//!   400 (tracing must never break serving). When absent the server mints
//!   its own id, so server-side flows exist either way.
//!
//! # Response
//!
//! Always `{"id", "code", "status", ...}`, plus `"trace": <id>` when the
//! request was traced (client-sent or server-minted — how a legacy client
//! learns the id its request got). `code` follows HTTP idiom:
//!
//! | code | status                    | meaning                                        |
//! |------|---------------------------|------------------------------------------------|
//! | 200  | `completed`               | full plan ran; `prediction`/`exit`/`confidence`|
//! | 200  | `preempted`, `deadline_expired` | stopped early **with** a checkpointed answer |
//! | 400  | `bad_request`             | unparseable line or invalid input spec         |
//! | 404  | `unknown_model`           | model not registered                           |
//! | 429  | `shed`                    | backpressure; `reason` is `queue_full` or `expired_in_queue` |
//! | 500  | `worker_crashed`          | the worker panicked on this task               |
//! | 503  | `closed` / `preempted`    | shutting down, or preempted before any exit    |
//! | 504  | `deadline_expired`        | deadline hit before any exit produced output   |
//!
//! A 200 with status `preempted` or `deadline_expired` is the elastic
//! contract of the paper: the task was stopped mid-flight but still hands
//! back its latest checkpointed answer.

use std::time::Duration;

use einet_edge::{InferenceRequest, TaskOutcome, TaskStatus};
use einet_tensor::Tensor;
use einet_trace::json::{self, JsonValue, JsonWriter};
use einet_trace::TraceContext;

use crate::registry::RouteError;

/// A parsed request line: where it goes and what to run.
#[derive(Debug, Clone)]
pub struct WireRequest {
    /// Client-chosen correlation id, echoed in the response (0 if absent).
    pub id: u64,
    /// Target model name.
    pub model: String,
    /// Client-sent distributed-tracing context (`None` when absent or
    /// malformed — tracing never rejects a request).
    pub trace: Option<TraceContext>,
    /// The executor-level request (input, label, deadline).
    pub request: InferenceRequest,
}

/// Parses one request line.
///
/// # Errors
///
/// A human-readable message describing the first problem found; the
/// server maps it to a 400 response.
pub fn parse_request(line: &str) -> Result<WireRequest, String> {
    let value = json::parse(line).map_err(|e| format!("invalid JSON: {e}"))?;
    let id = value.get("id").and_then(JsonValue::as_u64).unwrap_or(0);
    let trace = value.get("trace").and_then(TraceContext::from_json);
    let model = value
        .get("model")
        .and_then(JsonValue::as_str)
        .ok_or("missing \"model\" (string)")?
        .to_string();
    let input = value.get("input").ok_or("missing \"input\" (object)")?;
    let shape_val = input
        .get("shape")
        .and_then(JsonValue::as_array)
        .ok_or("missing \"input.shape\" (array)")?;
    let mut shape = Vec::with_capacity(shape_val.len());
    for d in shape_val {
        let d = d
            .as_u64()
            .ok_or("\"input.shape\" entries must be non-negative integers")?;
        shape.push(d as usize);
    }
    if shape.len() != 4 || shape[0] != 1 || shape.contains(&0) {
        return Err(format!(
            "\"input.shape\" must be [1, c, h, w] with positive dims, got {shape:?}"
        ));
    }
    let elems: usize = shape.iter().product();
    let tensor = match (input.get("fill"), input.get("data")) {
        (Some(fill), None) => {
            let x = fill.as_f64().ok_or("\"input.fill\" must be a number")? as f32;
            Tensor::filled(&shape, x)
        }
        (None, Some(data)) => {
            let items = data
                .as_array()
                .ok_or("\"input.data\" must be an array of numbers")?;
            if items.len() != elems {
                return Err(format!(
                    "\"input.data\" has {} elements, shape {:?} needs {}",
                    items.len(),
                    shape,
                    elems
                ));
            }
            let mut buf = Vec::with_capacity(elems);
            for v in items {
                buf.push(v.as_f64().ok_or("\"input.data\" entries must be numbers")? as f32);
            }
            Tensor::new(&shape, buf).map_err(|e| e.to_string())?
        }
        (Some(_), Some(_)) => {
            return Err("give \"input.fill\" or \"input.data\", not both".to_string())
        }
        (None, None) => return Err("missing \"input.fill\" or \"input.data\"".to_string()),
    };
    let mut request = InferenceRequest::new(tensor);
    if let Some(label) = value.get("label").and_then(JsonValue::as_u64) {
        request = request.with_label(label as usize);
    }
    if let Some(ms) = value.get("deadline_ms").and_then(JsonValue::as_f64) {
        if ms < 0.0 {
            return Err("\"deadline_ms\" must be non-negative".to_string());
        }
        request = request.with_deadline(Duration::from_micros((ms * 1000.0) as u64));
    }
    Ok(WireRequest {
        id,
        model,
        trace,
        request,
    })
}

/// Best-effort extraction of `id` and trace id from an unparseable
/// request line, so even a 400 stays correlated with the client's stream.
pub fn salvage_ids(line: &str) -> (u64, u64) {
    let Ok(v) = json::parse(line) else {
        return (0, 0);
    };
    let id = v.get("id").and_then(JsonValue::as_u64).unwrap_or(0);
    let trace = v
        .get("trace")
        .and_then(TraceContext::from_json)
        .map_or(0, |c| c.id);
    (id, trace)
}

fn response_head(id: u64, code: u64, status: &str, trace: u64) -> JsonWriter {
    let mut w = JsonWriter::new();
    w.begin_object();
    w.key("id");
    w.number_u64(id);
    w.key("code");
    w.number_u64(code);
    w.key("status");
    w.string(status);
    if trace != 0 {
        w.key("trace");
        w.number_u64(trace);
    }
    w
}

fn finish(mut w: JsonWriter) -> String {
    w.end_object();
    w.finish()
}

/// A 400 for an unparseable or invalid request line.
pub fn render_bad_request(id: u64, error: &str, trace: u64) -> String {
    let mut w = response_head(id, 400, "bad_request", trace);
    w.key("error");
    w.string(error);
    finish(w)
}

/// The response for a routing failure: 404 unknown model, 429 shed with
/// `reason: "queue_full"`, 503 shutting down.
pub fn render_route_error(id: u64, err: RouteError, trace: u64) -> String {
    match err {
        RouteError::UnknownModel => finish(response_head(id, 404, "unknown_model", trace)),
        RouteError::Shed => {
            let mut w = response_head(id, 429, "shed", trace);
            w.key("reason");
            w.string("queue_full");
            finish(w)
        }
        RouteError::Closed => finish(response_head(id, 503, "closed", trace)),
    }
}

/// A 500 for a worker that crashed on this task (or a reply channel that
/// vanished, which amounts to the same thing for the client).
pub fn render_worker_crashed(id: u64, trace: u64) -> String {
    let mut w = response_head(id, 500, "worker_crashed", trace);
    w.key("error");
    w.string("worker panicked while executing this task");
    finish(w)
}

/// The response for a delivered [`TaskOutcome`].
///
/// A queue shed renders as 429 with `reason: "expired_in_queue"` — the
/// same family as a queue-full shed, distinguishable by reason. An
/// outcome that carries an answer renders as 200 even when it was stopped
/// early (`status` says how it ended); only an answerless early stop
/// degrades to 503/504.
pub fn render_outcome(id: u64, outcome: &TaskOutcome, trace: u64) -> String {
    if outcome.was_shed() {
        let mut w = response_head(id, 429, "shed", trace);
        w.key("reason");
        w.string("expired_in_queue");
        return finish(w);
    }
    let status = match outcome.status {
        TaskStatus::Completed => "completed",
        TaskStatus::Preempted => "preempted",
        TaskStatus::DeadlineExpired => "deadline_expired",
        TaskStatus::ShedExpiredInQueue => unreachable!("handled above"),
    };
    match outcome.answer() {
        Some(answer) => {
            let mut w = response_head(id, 200, status, trace);
            w.key("prediction");
            w.number_u64(answer.predicted as u64);
            w.key("exit");
            w.number_u64(answer.exit as u64);
            w.key("confidence");
            w.number_f64(f64::from(answer.confidence));
            w.key("outputs");
            w.number_u64(outcome.outputs.len() as u64);
            w.key("blocks_run");
            w.number_u64(outcome.blocks_run as u64);
            if let Some(correct) = outcome.correct {
                w.key("correct");
                w.boolean(correct);
            }
            finish(w)
        }
        None => {
            // Stopped before any exit branch ran: no answer to hand over.
            let code = match outcome.status {
                TaskStatus::DeadlineExpired => 504,
                _ => 503,
            };
            let mut w = response_head(id, code, status, trace);
            w.key("blocks_run");
            w.number_u64(outcome.blocks_run as u64);
            finish(w)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_minimal_request() {
        let req =
            parse_request(r#"{"model": "m", "input": {"shape": [1, 1, 4, 4], "fill": 0.25}}"#)
                .unwrap();
        assert_eq!(req.id, 0);
        assert_eq!(req.model, "m");
        assert_eq!(req.request.deadline(), None);
        assert!(req.trace.is_none());
    }

    #[test]
    fn parses_trace_context_and_degrades_malformed_ones() {
        let req = parse_request(
            r#"{"model": "m", "trace": {"id": 77, "parent": 3},
                "input": {"shape": [1, 1, 4, 4], "fill": 0.0}}"#,
        )
        .unwrap();
        let ctx = req.trace.expect("trace parsed");
        assert_eq!((ctx.id, ctx.parent), (77, 3));
        // A malformed context is dropped, never a 400: tracing is advisory.
        for bad in [
            r#""not an object""#,
            r#"{"id": 0}"#,
            r#"{"id": -4}"#,
            r#"{"parent": 9}"#,
        ] {
            let line = format!(
                r#"{{"model": "m", "trace": {bad}, "input": {{"shape": [1,1,4,4], "fill": 0.0}}}}"#
            );
            let req = parse_request(&line).expect("request still accepted");
            assert!(req.trace.is_none(), "{bad} should degrade to absent");
        }
    }

    #[test]
    fn salvage_recovers_ids_from_invalid_requests() {
        let (id, trace) = salvage_ids(r#"{"id": 5, "trace": {"id": 9}}"#);
        assert_eq!((id, trace), (5, 9));
        assert_eq!(salvage_ids("not json"), (0, 0));
    }

    #[test]
    fn responses_echo_the_trace_id_only_when_present() {
        let line = render_bad_request(1, "nope", 42);
        let v = json::parse(&line).unwrap();
        assert_eq!(v.get("trace").unwrap().as_u64(), Some(42));
        let untraced = render_bad_request(1, "nope", 0);
        assert!(json::parse(&untraced).unwrap().get("trace").is_none());
    }

    #[test]
    fn parses_ids_deadlines_and_explicit_data() {
        let req = parse_request(
            r#"{"id": 9, "model": "m", "deadline_ms": 12.5, "label": 2,
                "input": {"shape": [1, 1, 1, 3], "data": [1.0, 2.0, 3.0]}}"#,
        )
        .unwrap();
        assert_eq!(req.id, 9);
        assert_eq!(req.request.deadline(), Some(Duration::from_micros(12_500)));
    }

    #[test]
    fn rejects_malformed_requests_with_reasons() {
        for (line, needle) in [
            ("not json", "invalid JSON"),
            (r#"{"input": {"shape": [1,1,2,2], "fill": 0}}"#, "model"),
            (r#"{"model": "m"}"#, "input"),
            (
                r#"{"model": "m", "input": {"shape": [2,1,2,2], "fill": 0}}"#,
                "[1, c, h, w]",
            ),
            (
                r#"{"model": "m", "input": {"shape": [1,1,2,2], "data": [1.0]}}"#,
                "needs 4",
            ),
            (
                r#"{"model": "m", "input": {"shape": [1,1,2,2], "fill": 0, "data": [1,2,3,4]}}"#,
                "not both",
            ),
            (r#"{"model": "m", "input": {"shape": [1,1,2,2]}}"#, "fill"),
        ] {
            let err = parse_request(line).unwrap_err();
            assert!(
                err.contains(needle),
                "{line}: {err} should mention {needle}"
            );
        }
    }

    #[test]
    fn responses_carry_code_status_and_reason() {
        let shed = render_route_error(3, RouteError::Shed, 0);
        let v = json::parse(&shed).unwrap();
        assert_eq!(v.get("id").unwrap().as_u64(), Some(3));
        assert_eq!(v.get("code").unwrap().as_u64(), Some(429));
        assert_eq!(v.get("reason").unwrap().as_str(), Some("queue_full"));
        let unknown = render_route_error(1, RouteError::UnknownModel, 0);
        assert!(unknown.contains("404"));
        let crashed = render_worker_crashed(2, 0);
        assert!(crashed.contains("500"));
    }

    #[test]
    fn shed_outcome_renders_as_429_not_an_error() {
        let outcome = TaskOutcome {
            outputs: Vec::new(),
            status: TaskStatus::ShedExpiredInQueue,
            blocks_run: 0,
            correct: None,
        };
        let v = json::parse(&render_outcome(5, &outcome, 0)).unwrap();
        assert_eq!(v.get("code").unwrap().as_u64(), Some(429));
        assert_eq!(v.get("reason").unwrap().as_str(), Some("expired_in_queue"));
    }
}
