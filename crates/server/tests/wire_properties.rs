//! Property-based tests for the wire layer and the reactor's multiplexing
//! contract: the parser never panics on arbitrary input, and every request
//! id sent over a pipelined connection comes back exactly once — whatever
//! order the completions arrive in.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;

use einet_core::ExitPlan;
use einet_edge::{PoolConfig, StaticSource};
use einet_models::{zoo, BranchSpec};
use einet_server::{wire, ModelRegistry, ModelSpec, ReactorConfig, ReactorServer};
use einet_trace::json;
use proptest::prelude::*;

// --- parser robustness ----------------------------------------------------

/// Arbitrary bytes, lossily decoded: covers binary junk, truncated UTF-8
/// replacement characters, control bytes, the lot.
fn arb_junk_line() -> impl Strategy<Value = String> {
    proptest::collection::vec(0u8..=255u8, 0..192)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

/// A valid request line with a random prefix chopped off or random bytes
/// spliced in — the "almost JSON" neighbourhood where panics hide.
fn arb_mangled_request() -> impl Strategy<Value = String> {
    (
        0u64..=u64::MAX,
        0usize..96,
        proptest::collection::vec(0u8..=255u8, 0..8),
    )
        .prop_map(|(id, cut, splice)| {
            let base = format!(
                "{{\"id\": {id}, \"model\": \"m\", \"deadline_ms\": 5, \
                 \"input\": {{\"shape\": [1, 1, 4, 4], \"fill\": 0.5}}}}"
            );
            let cut = cut.min(base.len());
            let mut mangled = base[..base.len() - cut].to_string();
            mangled.push_str(&String::from_utf8_lossy(&splice));
            mangled
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Whatever bytes arrive on the wire, `parse_request` returns `Ok` or
    /// `Err` — it never panics. (The reactor calls this on the reactor
    /// thread; a panic there would take down every connection.)
    #[test]
    fn parser_never_panics_on_arbitrary_bytes(line in arb_junk_line()) {
        let _ = wire::parse_request(&line);
    }

    /// Same, one street over: near-valid request lines.
    #[test]
    fn parser_never_panics_on_mangled_requests(line in arb_mangled_request()) {
        let _ = wire::parse_request(&line);
    }

    /// Any id in the JSON-safe integer range (≤ 2^53, the wire contract —
    /// the hand-rolled JSON module backs numbers with f64) survives
    /// render → parse verbatim, for every response shape the server can
    /// emit without a task outcome in hand.
    #[test]
    fn ids_survive_error_renders(id in 0u64..=(1u64 << 53)) {
        for rendered in [
            wire::render_bad_request(id, "nope", 0),
            wire::render_worker_crashed(id, 0),
        ] {
            let v = json::parse(&rendered).expect("responses are valid JSON");
            prop_assert_eq!(v.get("id").and_then(|i| i.as_u64()), Some(id));
        }
    }

    /// Whatever JSON value sits in the `trace` field — wrong type, out of
    /// range, missing members, nested junk — the parser accepts the
    /// request and degrades the context to "absent" instead of panicking
    /// or rejecting (tracing is advisory, never load-bearing).
    #[test]
    fn mangled_trace_contexts_never_panic_or_reject(trace_field in arb_trace_field()) {
        let line = format!(
            "{{\"id\": 1, \"model\": \"m\", \"trace\": {trace_field}, \
             \"input\": {{\"shape\": [1, 1, 4, 4], \"fill\": 0.5}}}}"
        );
        if let Ok(req) = wire::parse_request(&line) {
            if let Some(ctx) = req.trace {
                prop_assert!(ctx.id >= 1 && ctx.id < einet_trace::MAX_TRACE_ID);
            }
        }
        // Salvage must be equally unshockable.
        let _ = wire::salvage_ids(&line);
    }

    /// A well-formed context round-trips through parse unchanged, and its
    /// id survives the response echo verbatim.
    #[test]
    fn valid_trace_contexts_round_trip(
        id in 1u64..(1u64 << 53),
        parent in 0u64..=(1u64 << 53),
    ) {
        let line = format!(
            "{{\"model\": \"m\", \"trace\": {{\"id\": {id}, \"parent\": {parent}}}, \
             \"input\": {{\"shape\": [1, 1, 4, 4], \"fill\": 0.5}}}}"
        );
        let req = wire::parse_request(&line).expect("valid request");
        let ctx = req.trace.expect("context parsed");
        prop_assert_eq!(ctx.id, id);
        prop_assert_eq!(ctx.parent, parent);
        let echoed = wire::render_worker_crashed(req.id, ctx.id);
        let v = json::parse(&echoed).expect("valid response");
        prop_assert_eq!(v.get("trace").and_then(|t| t.as_u64()), Some(id));
    }
}

/// JSON fragments to sit in a request's `trace` field: valid contexts,
/// boundary ids, wrong types, and structural junk.
fn arb_trace_field() -> impl Strategy<Value = String> {
    prop_oneof![
        (0u64..=u64::MAX, 0u64..=u64::MAX)
            .prop_map(|(id, parent)| format!("{{\"id\": {id}, \"parent\": {parent}}}")),
        Just("{}".to_string()),
        Just("{\"id\": 0}".to_string()),
        Just("{\"id\": -7}".to_string()),
        Just("{\"id\": 9007199254740992}".to_string()),
        Just("{\"id\": 3.5}".to_string()),
        Just("{\"parent\": 4}".to_string()),
        Just("null".to_string()),
        Just("42".to_string()),
        Just("\"id\"".to_string()),
        Just("[1, 2]".to_string()),
        Just("{\"id\": \"nine\", \"parent\": []}".to_string()),
    ]
}

// --- multiplexed round-trip through the reactor ---------------------------

fn start_reactor() -> (Arc<ModelRegistry>, ReactorServer) {
    let mut registry = ModelRegistry::new();
    let net = zoo::b_alexnet([1, 16, 16], 10, &BranchSpec::paper_default(), 1);
    registry.register(
        "m",
        net,
        |_replica, _worker| Box::new(StaticSource::new(ExitPlan::full(3))),
        ModelSpec {
            pool: PoolConfig {
                workers: 1,
                queue_capacity: 256,
                ..PoolConfig::default()
            },
            replicas: 1,
            ..ModelSpec::default()
        },
    );
    let registry = Arc::new(registry);
    let server = ReactorServer::start(
        Arc::clone(&registry),
        "127.0.0.1:0",
        ReactorConfig::default(),
    )
    .expect("reactor binds");
    (registry, server)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Pipeline a batch of requests with arbitrary (possibly colliding)
    /// ids down ONE connection without reading a single response, then
    /// read them all back: every id comes back exactly as many times as it
    /// was sent, and each response is well-formed. Responses arrive in
    /// completion order, so this is exactly the out-of-order id
    /// round-trip the multiplexing contract promises.
    #[test]
    fn ids_round_trip_through_multiplexed_connection(
        ids in proptest::collection::vec(0u64..=(1u64 << 53), 1..48),
    ) {
        let (registry, server) = start_reactor();
        let mut conn = TcpStream::connect(server.local_addr()).expect("connect");
        let mut sent: HashMap<u64, i64> = HashMap::new();
        let mut lines = String::new();
        for &id in &ids {
            *sent.entry(id).or_insert(0) += 1;
            lines.push_str(&format!(
                "{{\"id\": {id}, \"model\": \"m\", \
                 \"input\": {{\"shape\": [1, 1, 16, 16], \"fill\": 0.5}}}}\n"
            ));
        }
        conn.write_all(lines.as_bytes()).expect("pipelined write");
        let mut reader = BufReader::new(conn.try_clone().expect("clone"));
        let mut line = String::new();
        for _ in 0..ids.len() {
            line.clear();
            let n = reader.read_line(&mut line).expect("response line");
            prop_assert!(n > 0, "connection closed before all ids answered");
            let v = json::parse(line.trim()).expect("response is valid JSON");
            let id = v.get("id").and_then(|i| i.as_u64()).expect("response id");
            let code = v.get("code").and_then(|c| c.as_u64()).expect("code");
            // Any terminal code is fine (200/429/...), but it must carry
            // an id we actually sent and still owe.
            let owed = sent.get_mut(&id).map(|c| { *c -= 1; *c }).unwrap_or(-1);
            prop_assert!(owed >= 0, "id {id} answered more times than sent (code {code})");
        }
        prop_assert!(sent.values().all(|&c| c == 0), "some ids never answered");
        drop(reader);
        server.shutdown();
        let registry = Arc::try_unwrap(registry).expect("sole registry owner");
        registry.shutdown();
    }
}

/// Interleaves two pipelined connections and checks isolation: each
/// connection gets back exactly its own ids, never the neighbour's.
#[test]
fn multiplexed_connections_do_not_leak_ids_across() {
    let (registry, server) = start_reactor();
    let mk = |base: u64| {
        let mut conn = TcpStream::connect(server.local_addr()).expect("connect");
        let mut lines = String::new();
        for i in 0..16u64 {
            lines.push_str(&format!(
                "{{\"id\": {}, \"model\": \"m\", \
                 \"input\": {{\"shape\": [1, 1, 16, 16], \"fill\": 0.25}}}}\n",
                base + i
            ));
        }
        conn.write_all(lines.as_bytes()).expect("write");
        conn
    };
    let a = mk(1_000);
    let b = mk(2_000);
    for (conn, base) in [(a, 1_000u64), (b, 2_000u64)] {
        let mut reader = BufReader::new(conn);
        let mut seen = Vec::new();
        let mut line = String::new();
        for _ in 0..16 {
            line.clear();
            assert!(reader.read_line(&mut line).expect("read") > 0);
            let v = json::parse(line.trim()).expect("json");
            seen.push(v.get("id").and_then(|i| i.as_u64()).expect("id"));
        }
        seen.sort_unstable();
        let want: Vec<u64> = (base..base + 16).collect();
        assert_eq!(seen, want, "connection must get exactly its own ids");
    }
    server.shutdown();
    let registry = Arc::try_unwrap(registry).expect("sole owner");
    registry.shutdown();
}

/// Backward compatibility: a legacy client that never sends a `trace`
/// field still yields full server-side flows — the server mints a context
/// at ingest, echoes its id in the response, and the pool keys the task's
/// flow by it (one balanced start/end pair per request).
#[test]
fn legacy_clients_without_trace_field_get_full_server_side_flows() {
    use einet_trace::{EventKind, FlowPhase, TraceConfig};
    einet_trace::init(TraceConfig::on());
    let (registry, server) = start_reactor();
    let mut conn = TcpStream::connect(server.local_addr()).expect("connect");
    let n = 8u64;
    let mut lines = String::new();
    for id in 0..n {
        lines.push_str(&format!(
            "{{\"id\": {id}, \"model\": \"m\", \
             \"input\": {{\"shape\": [1, 1, 16, 16], \"fill\": 0.5}}}}\n"
        ));
    }
    conn.write_all(lines.as_bytes()).expect("write");
    let mut reader = BufReader::new(conn);
    let mut minted = std::collections::HashSet::new();
    let mut line = String::new();
    for _ in 0..n {
        line.clear();
        assert!(reader.read_line(&mut line).expect("response") > 0);
        let v = json::parse(line.trim()).expect("json");
        let trace = v
            .get("trace")
            .and_then(|t| t.as_u64())
            .expect("server-minted trace id echoed to the legacy client");
        assert!((1..einet_trace::MAX_TRACE_ID).contains(&trace));
        assert!(minted.insert(trace), "minted ids are unique per request");
    }
    drop(reader);
    server.shutdown();
    let registry = Arc::try_unwrap(registry).expect("sole owner");
    registry.shutdown();
    let snapshot = einet_trace::drain();
    einet_trace::init(TraceConfig::off());
    for &id in &minted {
        let (mut starts, mut ends) = (0u32, 0u32);
        for e in &snapshot.events {
            if let EventKind::Flow { phase, id: fid } = e.kind {
                if fid == id {
                    match phase {
                        FlowPhase::Start => starts += 1,
                        FlowPhase::End => ends += 1,
                        FlowPhase::Step => {}
                    }
                }
            }
        }
        assert_eq!((starts, ends), (1, 1), "flow {id} is balanced");
    }
}

/// Shutdown under load: pipeline a burst, immediately shut the server
/// down, and verify the graceful drain still answers every id exactly
/// once before the connection closes.
#[test]
fn graceful_drain_answers_every_inflight_id() {
    let (registry, server) = start_reactor();
    let mut conn = TcpStream::connect(server.local_addr()).expect("connect");
    let n = 24u64;
    let mut lines = String::new();
    for id in 0..n {
        lines.push_str(&format!(
            "{{\"id\": {id}, \"model\": \"m\", \
             \"input\": {{\"shape\": [1, 1, 16, 16], \"fill\": 0.5}}}}\n"
        ));
    }
    conn.write_all(lines.as_bytes()).expect("write burst");
    let mut reader = BufReader::new(conn);
    let mut seen = std::collections::HashSet::new();
    let mut line = String::new();
    // One response first: proves the reactor accepted the connection and
    // swept the (single-write, loopback-atomic) burst into its read buffer
    // before we pull the rug.
    assert!(reader.read_line(&mut line).expect("first response") > 0);
    let v = json::parse(line.trim()).expect("json");
    seen.insert(v.get("id").and_then(|i| i.as_u64()).expect("id"));
    let metrics = server.metrics_handle();
    server.shutdown(); // returns only after the drain
    let snap = metrics.snapshot();
    assert_eq!(
        snap.open_connections, 0,
        "drain must close every connection"
    );
    assert_eq!(snap.inflight_requests, 0, "drain must finish every request");
    loop {
        line.clear();
        match reader.read_line(&mut line) {
            Ok(0) | Err(_) => break,
            Ok(_) => {
                let v = json::parse(line.trim()).expect("json");
                let id = v.get("id").and_then(|i| i.as_u64()).expect("id");
                assert!(seen.insert(id), "id {id} answered twice");
            }
        }
    }
    assert_eq!(
        seen.len() as u64,
        n,
        "every pipelined id answered before close"
    );
    let registry = Arc::try_unwrap(registry).expect("sole owner");
    registry.shutdown();
}
