//! Registry-driven replica scaling: manual grow/shrink keeps routing and
//! metrics reconciliation exact, and the [`ReplicaScaler`] control loop
//! demonstrably adds replicas under bursty load and shrinks back when the
//! burst passes.

use std::sync::Arc;
use std::time::{Duration, Instant};

use einet_core::ExitPlan;
use einet_edge::{InferenceRequest, PoolConfig, StaticSource};
use einet_models::{zoo, BranchSpec};
use einet_server::{ModelRegistry, ModelSpec, ReplicaScaler, ScalerConfig};
use einet_tensor::Tensor;

fn registry_with(pool: PoolConfig) -> Arc<ModelRegistry> {
    let mut registry = ModelRegistry::new();
    let net = zoo::b_alexnet([1, 16, 16], 10, &BranchSpec::paper_default(), 1);
    registry.register(
        "m",
        net,
        |_replica, _worker| Box::new(StaticSource::new(ExitPlan::full(3))),
        ModelSpec {
            replicas: 1,
            pool,
            ..ModelSpec::default()
        },
    );
    Arc::new(registry)
}

fn request() -> InferenceRequest {
    InferenceRequest::new(Tensor::zeros(&[1, 1, 16, 16]))
}

fn wait_until(what: &str, timeout: Duration, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + timeout;
    while Instant::now() < deadline {
        if pred() {
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    panic!("timed out waiting for: {what}");
}

#[test]
fn manual_scaling_keeps_routing_and_reconciliation_exact() {
    let registry = registry_with(PoolConfig {
        workers: 1,
        queue_capacity: 16,
        ..PoolConfig::default()
    });
    assert_eq!(registry.replica_count("m"), Some(1));

    // Serve a little on one replica.
    for _ in 0..4 {
        let reply = registry.submit("m", request()).expect("routed");
        assert!(reply.recv().expect("answer").expect("ok").is_complete());
    }

    // Grow twice; routing spreads over the new replicas transparently.
    assert_eq!(registry.scale_up("m"), Some(2));
    assert_eq!(registry.scale_up("m"), Some(3));
    assert_eq!(registry.replica_count("m"), Some(3));
    for _ in 0..9 {
        let reply = registry.submit("m", request()).expect("routed");
        assert!(reply.recv().expect("answer").expect("ok").is_complete());
    }

    // Shrink back down to one. Work done by retired replicas must stay
    // visible in the merged model snapshot (exact reconciliation).
    assert_eq!(registry.scale_down("m"), Some(2));
    assert_eq!(registry.scale_down("m"), Some(1));
    assert_eq!(registry.scale_down("m"), None, "never below one replica");
    let stats = registry.route_stats("m").expect("stats");
    assert_eq!(stats.scale_ups, 2);
    assert_eq!(stats.scale_downs, 2);
    assert_eq!(stats.routed, 13);
    let snap = registry.model_snapshot("m").expect("snapshot");
    assert_eq!(snap.completed, 13, "retired replicas' work is not lost");
    assert!(snap.reconciles(), "merged accounting stays exact");

    // Prometheus exposition reflects the scale events and live set.
    let prom = registry.to_prom_text();
    assert!(prom.contains("einet_scale_up_total{model=\"m\"} 2"));
    assert!(prom.contains("einet_scale_down_total{model=\"m\"} 2"));
    assert!(prom.contains("einet_replicas{model=\"m\"} 1"));

    let registry = Arc::try_unwrap(registry).expect("sole owner");
    registry.shutdown();
}

#[test]
fn scaler_grows_under_burst_and_shrinks_back_when_calm() {
    // One deliberately slow worker (per-block delay) so a burst piles up
    // in the admission queue — the scaler's leading indicator.
    let registry = registry_with(PoolConfig {
        workers: 1,
        queue_capacity: 64,
        block_delay: Duration::from_millis(4),
        ..PoolConfig::default()
    });
    let scaler = ReplicaScaler::spawn(
        Arc::clone(&registry),
        ScalerConfig {
            min_replicas: 1,
            max_replicas: 3,
            queue_depth_high: 4,
            breaches_to_scale: 2,
            idle_ticks_to_shrink: 3,
            cooldown: Duration::from_millis(50),
            tick: Duration::from_millis(20),
            ..ScalerConfig::default()
        },
    );

    // Burst: flood the queue faster than one slow worker drains it,
    // topping it back up until the scaler reacts.
    let mut replies = Vec::new();
    wait_until(
        "scaler grows the replica set",
        Duration::from_secs(20),
        || {
            let depth = registry
                .model_snapshot("m")
                .map(|s| s.queue_depth)
                .unwrap_or(0);
            if depth < 16 {
                for _ in 0..16 {
                    if let Ok(r) = registry.submit("m", request()) {
                        replies.push(r);
                    }
                }
            }
            registry.replica_count("m") > Some(1)
        },
    );
    let grown = registry.replica_count("m").expect("model exists");
    assert!(grown > 1, "burst must add replicas, got {grown}");
    assert!(registry.route_stats("m").expect("stats").scale_ups >= 1);

    // Let the burst finish, then stop sending entirely: sustained calm
    // (empty queue, healthy SLO) must shrink the set back to the floor.
    for r in replies {
        let _ = r.recv();
    }
    wait_until(
        "scaler shrinks back to one replica",
        Duration::from_secs(20),
        || registry.replica_count("m") == Some(1),
    );
    assert!(registry.route_stats("m").expect("stats").scale_downs >= 1);
    let snap = registry.model_snapshot("m").expect("snapshot");
    assert!(snap.reconciles(), "scaling never breaks accounting");

    scaler.stop();
    let registry = Arc::try_unwrap(registry).expect("sole owner");
    registry.shutdown();
}
