//! Integration tests for the multi-tenant front-end: weighted routing,
//! tenant isolation under overload, and the TCP/JSON wire loop.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use einet_core::ExitPlan;
use einet_edge::{InferenceRequest, PoolConfig, StaticSource, TaskStatus};
use einet_models::{zoo, BranchSpec};
use einet_server::{ModelRegistry, ModelSpec, RouteError, Server};
use einet_tensor::Tensor;
use einet_trace::json;

const SIDE: usize = 16;

fn tiny_net(seed: u64) -> einet_models::MultiExitNet {
    zoo::b_alexnet([1, SIDE, SIDE], 10, &BranchSpec::paper_default(), seed)
}

fn request() -> InferenceRequest {
    InferenceRequest::new(Tensor::zeros(&[1, 1, SIDE, SIDE]))
}

fn full_plan_source() -> Box<dyn einet_edge::PlannerSource> {
    Box::new(StaticSource::new(ExitPlan::full(3)))
}

#[test]
fn weighted_round_robin_skews_traffic_by_weight() {
    let mut registry = ModelRegistry::new();
    registry.register(
        "weighted",
        tiny_net(1),
        |_r, _w| full_plan_source(),
        ModelSpec {
            replicas: 2,
            weights: vec![3, 1],
            pool: PoolConfig {
                workers: 1,
                queue_capacity: 64,
                ..PoolConfig::default()
            },
        },
    );

    let mut replies = Vec::new();
    for _ in 0..40 {
        replies.push(registry.submit("weighted", request()).unwrap());
    }
    for rx in replies {
        assert!(rx.recv().unwrap().unwrap().is_complete());
    }

    let a = registry.replica_snapshot("weighted", 0).unwrap();
    let b = registry.replica_snapshot("weighted", 1).unwrap();
    // 3:1 over 40 requests is exactly 30/10 when nothing spills; allow a
    // little spillover slack but require the skew to be unmistakable.
    assert_eq!(a.submitted + b.submitted, 40);
    assert!(
        a.submitted >= 25 && b.submitted <= 15,
        "expected ~30/10 split, got {}/{}",
        a.submitted,
        b.submitted
    );
    let merged = registry.model_snapshot("weighted").unwrap();
    assert_eq!(merged.submitted, 40);
    assert!(
        merged.reconciles(),
        "merged snapshot reconciles after drain"
    );
    assert_eq!(registry.route_stats("weighted").unwrap().routed, 40);
}

#[test]
fn saturating_one_model_does_not_touch_the_other_tenant() {
    let mut registry = ModelRegistry::new();
    // "victim": one slow worker (forced per-block delay), a 2-deep queue.
    registry.register(
        "victim",
        tiny_net(2),
        |_r, _w| full_plan_source(),
        ModelSpec {
            pool: PoolConfig {
                workers: 1,
                queue_capacity: 2,
                block_delay: Duration::from_millis(15),
                ..PoolConfig::default()
            },
            ..ModelSpec::default()
        },
    );
    // "bystander": a healthy tenant sharing the registry.
    registry.register(
        "bystander",
        tiny_net(3),
        |_r, _w| full_plan_source(),
        ModelSpec {
            pool: PoolConfig {
                workers: 1,
                queue_capacity: 32,
                ..PoolConfig::default()
            },
            ..ModelSpec::default()
        },
    );
    let registry = Arc::new(registry);

    // Flood the victim from a side thread until it sheds, while the
    // bystander serves a steady trickle from this thread.
    let flood = {
        let registry = Arc::clone(&registry);
        std::thread::spawn(move || {
            let mut sheds = 0u32;
            let mut accepted = Vec::new();
            for _ in 0..64 {
                match registry.submit("victim", request()) {
                    Ok(rx) => accepted.push(rx),
                    Err(RouteError::Shed) => sheds += 1,
                    Err(e) => panic!("unexpected route error: {e:?}"),
                }
            }
            for rx in accepted {
                let _ = rx.recv();
            }
            sheds
        })
    };

    let mut bystander_ok = 0u32;
    for _ in 0..10 {
        let rx = registry
            .submit("bystander", request())
            .expect("bystander must never shed while the victim is flooded");
        assert!(rx.recv().unwrap().unwrap().is_complete());
        bystander_ok += 1;
    }
    let sheds = flood.join().unwrap();

    assert!(
        sheds > 0,
        "the flood must overflow the victim's 2-deep queue"
    );
    assert_eq!(bystander_ok, 10);

    // Shed accounting reconciles per tenant: the victim's registry-level
    // counters match its pool-level rejections one-to-one (single replica,
    // so no spillover multi-counting), and the bystander saw none of it.
    let victim_route = registry.route_stats("victim").unwrap();
    let victim = registry.model_snapshot("victim").unwrap();
    assert_eq!(victim_route.shed_queue_full, u64::from(sheds));
    assert_eq!(victim.rejected, u64::from(sheds));
    assert_eq!(victim_route.routed + victim_route.shed_queue_full, 64);
    assert!(victim.reconciles());

    let bystander_route = registry.route_stats("bystander").unwrap();
    let bystander = registry.model_snapshot("bystander").unwrap();
    assert_eq!(bystander_route.shed_queue_full, 0);
    assert_eq!(bystander.rejected, 0);
    assert_eq!(bystander.submitted, 10);
    assert_eq!(bystander.completed, 10);
    assert!(bystander.reconciles());

    // The labeled exposition carries both tenants under distinct labels.
    let prom = registry.to_prom_text();
    assert!(prom.contains("einet_tasks_submitted_total{model=\"victim\"}"));
    assert!(prom.contains("einet_tasks_submitted_total{model=\"bystander\"} 10"));
    assert!(prom.contains("einet_route_shed_total{model=\"bystander\"} 0"));
}

#[test]
fn unknown_models_are_rejected_without_side_effects() {
    let mut registry = ModelRegistry::new();
    registry.register(
        "only",
        tiny_net(4),
        |_r, _w| full_plan_source(),
        ModelSpec::default(),
    );
    assert_eq!(
        registry.submit("nope", request()).unwrap_err(),
        RouteError::UnknownModel
    );
    assert_eq!(registry.model_snapshot("only").unwrap().submitted, 0);
    assert!(registry.route_stats("nope").is_none());
}

/// Spins until the model's queue is empty — i.e. every admitted task has
/// been pulled by a worker, which is then busy for its full service time.
fn wait_until_drained_into_service(registry: &ModelRegistry, model: &str) {
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while registry.model_snapshot(model).unwrap().queue_depth > 0 {
        assert!(
            std::time::Instant::now() < deadline,
            "worker never dequeued the parked task"
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// One line out, one line back.
fn roundtrip(
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    line: &str,
) -> json::JsonValue {
    writer.write_all(line.as_bytes()).unwrap();
    writer.write_all(b"\n").unwrap();
    writer.flush().unwrap();
    let mut response = String::new();
    reader.read_line(&mut response).unwrap();
    json::parse(response.trim()).expect("response is one JSON object per line")
}

#[test]
fn tcp_round_trip_serves_responses_in_order() {
    let mut registry = ModelRegistry::new();
    registry.register(
        "alexnet",
        tiny_net(5),
        |_r, _w| full_plan_source(),
        ModelSpec {
            pool: PoolConfig {
                workers: 1,
                queue_capacity: 8,
                ..PoolConfig::default()
            },
            ..ModelSpec::default()
        },
    );
    let registry = Arc::new(registry);
    let server = Server::start(Arc::clone(&registry), "127.0.0.1:0").unwrap();

    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // A well-formed request completes with a prediction.
    let ok = roundtrip(
        &mut reader,
        &mut writer,
        &format!(
            r#"{{"id": 7, "model": "alexnet", "label": 3, "input": {{"shape": [1, 1, {SIDE}, {SIDE}], "fill": 0.5}}}}"#
        ),
    );
    assert_eq!(ok.get("id").unwrap().as_u64(), Some(7));
    assert_eq!(ok.get("code").unwrap().as_u64(), Some(200));
    assert_eq!(ok.get("status").unwrap().as_str(), Some("completed"));
    assert!(ok.get("prediction").unwrap().as_u64().is_some());
    assert!(ok.get("correct").is_some(), "label in, accuracy bit out");

    // Unknown model → 404 on the same connection, which stays usable.
    let missing = roundtrip(
        &mut reader,
        &mut writer,
        r#"{"id": 8, "model": "ghost", "input": {"shape": [1, 1, 4, 4], "fill": 0}}"#,
    );
    assert_eq!(missing.get("code").unwrap().as_u64(), Some(404));

    // Garbage → 400 with the salvaged id.
    let bad = roundtrip(&mut reader, &mut writer, r#"{"id": 9, "model": 42}"#);
    assert_eq!(bad.get("id").unwrap().as_u64(), Some(9));
    assert_eq!(bad.get("code").unwrap().as_u64(), Some(400));

    // And the connection still serves real work afterwards.
    let again = roundtrip(
        &mut reader,
        &mut writer,
        &format!(
            r#"{{"id": 10, "model": "alexnet", "input": {{"shape": [1, 1, {SIDE}, {SIDE}], "fill": 0.1}}}}"#
        ),
    );
    assert_eq!(again.get("code").unwrap().as_u64(), Some(200));

    server.shutdown();
    let snap = registry.model_snapshot("alexnet").unwrap();
    assert_eq!(snap.completed, 2);
    assert!(snap.reconciles());
}

#[test]
fn tcp_surfaces_queue_full_sheds_as_429_responses() {
    let mut registry = ModelRegistry::new();
    // One slow worker and a 1-deep queue: easy to saturate deterministically.
    registry.register(
        "narrow",
        tiny_net(6),
        |_r, _w| full_plan_source(),
        ModelSpec {
            pool: PoolConfig {
                workers: 1,
                queue_capacity: 1,
                block_delay: Duration::from_millis(60),
                ..PoolConfig::default()
            },
            ..ModelSpec::default()
        },
    );
    let registry = Arc::new(registry);
    let server = Server::start(Arc::clone(&registry), "127.0.0.1:0").unwrap();

    // Connect first so only the write → submit window races against the
    // (~180ms) service time.
    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // Deterministic saturation: park one task, wait until the worker has
    // pulled it (and is busy for the full ~180ms service), then fill the
    // 1-deep queue behind it. Shedding is now guaranteed for the window.
    let mut parked = vec![registry.submit("narrow", request()).unwrap()];
    wait_until_drained_into_service(&registry, "narrow");
    parked.push(registry.submit("narrow", request()).unwrap());
    assert_eq!(
        registry.submit("narrow", request()).unwrap_err(),
        RouteError::Shed,
        "queue is full from here on"
    );
    let shed = roundtrip(
        &mut reader,
        &mut writer,
        &format!(
            r#"{{"id": 1, "model": "narrow", "input": {{"shape": [1, 1, {SIDE}, {SIDE}], "fill": 0}}}}"#
        ),
    );
    assert_eq!(
        shed.get("code").unwrap().as_u64(),
        Some(429),
        "explicit shed, not an error"
    );
    assert_eq!(shed.get("status").unwrap().as_str(), Some("shed"));
    assert_eq!(shed.get("reason").unwrap().as_str(), Some("queue_full"));

    for rx in parked {
        let _ = rx.recv();
    }
    server.shutdown();
}

#[test]
fn tcp_delivers_expired_in_queue_sheds_distinctly() {
    let mut registry = ModelRegistry::new();
    registry.register(
        "deadline",
        tiny_net(7),
        |_r, _w| full_plan_source(),
        ModelSpec {
            pool: PoolConfig {
                workers: 1,
                queue_capacity: 8,
                block_delay: Duration::from_millis(40),
                ..PoolConfig::default()
            },
            ..ModelSpec::default()
        },
    );
    let registry = Arc::new(registry);
    let server = Server::start(Arc::clone(&registry), "127.0.0.1:0").unwrap();

    let stream = TcpStream::connect(server.local_addr()).unwrap();
    let mut writer = stream.try_clone().unwrap();
    let mut reader = BufReader::new(stream);

    // Park one long task and wait until the worker is actually servicing
    // it (~120ms), so the deadline request below queues behind it and its
    // 1ms deadline expires while waiting.
    let busy = registry.submit("deadline", request()).unwrap();
    wait_until_drained_into_service(&registry, "deadline");
    let shed = roundtrip(
        &mut reader,
        &mut writer,
        &format!(
            r#"{{"id": 2, "model": "deadline", "deadline_ms": 1, "input": {{"shape": [1, 1, {SIDE}, {SIDE}], "fill": 0}}}}"#
        ),
    );
    assert_eq!(shed.get("code").unwrap().as_u64(), Some(429));
    assert_eq!(
        shed.get("reason").unwrap().as_str(),
        Some("expired_in_queue")
    );

    assert_eq!(busy.recv().unwrap().unwrap().status, TaskStatus::Completed);
    server.shutdown();
    let snap = registry.model_snapshot("deadline").unwrap();
    assert_eq!(snap.shed_expired_at_dequeue, 1);
    assert!(snap.reconciles());
}
