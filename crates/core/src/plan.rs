//! Exit plans.

use std::fmt;

/// A plan over the exits of a multi-exit network: bit `i` set means
/// *execute branch `i`*, clear means *skip it* (the backbone always runs).
///
/// Plans are value types backed by a single `u64` word — the paper's largest
/// model has 40 exits, and tiny plans are what lets the search engine
/// evaluate hundreds of thousands of candidates per millisecond.
///
/// # Example
///
/// ```
/// use einet_core::ExitPlan;
///
/// let mut plan = ExitPlan::empty(5);
/// plan.set(1, true);
/// plan.set(4, true);
/// assert_eq!(plan.count_executed(), 2);
/// assert_eq!(plan.to_string(), "01001");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExitPlan {
    bits: u64,
    len: usize,
}

impl ExitPlan {
    /// The maximum number of exits a plan can describe.
    pub const MAX_EXITS: usize = 64;

    /// A plan that skips every branch.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero or exceeds [`ExitPlan::MAX_EXITS`].
    pub fn empty(len: usize) -> Self {
        assert!(
            len > 0 && len <= Self::MAX_EXITS,
            "plan length must be in 1..={}",
            Self::MAX_EXITS
        );
        ExitPlan { bits: 0, len }
    }

    /// A plan that executes every branch (the "100% output" baseline).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`ExitPlan::empty`].
    pub fn full(len: usize) -> Self {
        let mut p = Self::empty(len);
        p.bits = if len == 64 {
            u64::MAX
        } else {
            (1_u64 << len) - 1
        };
        p
    }

    /// A plan executing only the deepest exit (the classic single-exit
    /// behaviour).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`ExitPlan::empty`].
    pub fn last_only(len: usize) -> Self {
        let mut p = Self::empty(len);
        p.set(len - 1, true);
        p
    }

    /// Builds a plan from booleans.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is empty or longer than [`ExitPlan::MAX_EXITS`].
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut p = Self::empty(bits.len());
        for (i, &b) in bits.iter().enumerate() {
            p.set(i, b);
        }
        p
    }

    /// Builds a plan of length `len` executing exactly the given exits.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    pub fn from_indices(len: usize, executed: &[usize]) -> Self {
        let mut p = Self::empty(len);
        for &i in executed {
            p.set(i, true);
        }
        p
    }

    /// The static plan that executes an evenly-spaced `percent` fraction of
    /// the branches, always including the deepest exit (the paper's
    /// 25%/50%/100% static baselines).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < percent <= 1`.
    pub fn static_percent(len: usize, percent: f64) -> Self {
        assert!(
            percent > 0.0 && percent <= 1.0,
            "percent must be in (0, 1], got {percent}"
        );
        let count = ((len as f64 * percent).round() as usize).clamp(1, len);
        let mut p = Self::empty(len);
        // Evenly spaced from the deep end so the final exit is always kept.
        for k in 0..count {
            let pos = len - 1 - (k as f64 * len as f64 / count as f64).round() as usize;
            p.set(pos.min(len - 1), true);
        }
        p
    }

    /// The plan that skips `k` exits spread uniformly over the depth and
    /// executes the rest (the Fig. 11 sweep).
    ///
    /// # Panics
    ///
    /// Panics if `k >= len`.
    pub fn uniform_skip(len: usize, k: usize) -> Self {
        assert!(k < len, "cannot skip all {len} exits");
        let mut p = Self::full(len);
        if k == 0 {
            return p;
        }
        for j in 0..k {
            // Spread skipped exits across the shallow-to-deep range, never
            // skipping the deepest exit.
            let pos = ((j as f64 + 0.5) * (len - 1) as f64 / k as f64) as usize;
            p.set(pos.min(len - 2), false);
        }
        p
    }

    /// Number of exits the plan covers.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the plan covers zero exits (never true for a constructed
    /// plan).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether branch `i` is executed.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        assert!(i < self.len, "exit {i} out of range for {} exits", self.len);
        (self.bits >> i) & 1 == 1
    }

    /// Sets whether branch `i` is executed.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn set(&mut self, i: usize, execute: bool) {
        assert!(i < self.len, "exit {i} out of range for {} exits", self.len);
        if execute {
            self.bits |= 1 << i;
        } else {
            self.bits &= !(1 << i);
        }
    }

    /// Returns a copy with bit `i` set.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn with(&self, i: usize, execute: bool) -> Self {
        let mut p = *self;
        p.set(i, execute);
        p
    }

    /// Number of executed branches.
    pub fn count_executed(&self) -> usize {
        self.bits.count_ones() as usize
    }

    /// Iterates over the indices of executed branches, shallow to deep.
    pub fn iter_executed(&self) -> impl Iterator<Item = usize> + '_ {
        (0..self.len).filter(move |&i| self.get(i))
    }

    /// The plan as a boolean vector.
    pub fn to_bools(&self) -> Vec<bool> {
        (0..self.len).map(|i| self.get(i)).collect()
    }

    /// Keeps bits `0..prefix` from `history` and bits `prefix..` from
    /// `self` — used when replanning must not rewrite the past.
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or `prefix > len`.
    #[must_use]
    pub fn with_frozen_prefix(&self, history: &ExitPlan, prefix: usize) -> Self {
        assert_eq!(self.len, history.len, "plan length mismatch");
        assert!(prefix <= self.len, "prefix out of range");
        if prefix == 0 {
            return *self;
        }
        let mask = if prefix == 64 {
            u64::MAX
        } else {
            (1_u64 << prefix) - 1
        };
        ExitPlan {
            bits: (history.bits & mask) | (self.bits & !mask),
            len: self.len,
        }
    }

    /// The raw bit word (for hashing / compact storage).
    pub fn bits(&self) -> u64 {
        self.bits
    }
}

impl fmt::Display for ExitPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.len {
            write!(f, "{}", u8::from(self.get(i)))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_full() {
        let e = ExitPlan::empty(5);
        assert_eq!(e.count_executed(), 0);
        let f = ExitPlan::full(5);
        assert_eq!(f.count_executed(), 5);
        assert!(f.get(0) && f.get(4));
    }

    #[test]
    fn full_64_exits() {
        let f = ExitPlan::full(64);
        assert_eq!(f.count_executed(), 64);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut p = ExitPlan::empty(8);
        p.set(3, true);
        assert!(p.get(3));
        assert!(!p.get(2));
        p.set(3, false);
        assert_eq!(p.count_executed(), 0);
    }

    #[test]
    fn static_percent_includes_last_exit() {
        for len in [3, 5, 14, 21, 40] {
            for pct in [0.25, 0.5, 1.0] {
                let p = ExitPlan::static_percent(len, pct);
                assert!(p.get(len - 1), "len={len} pct={pct} must keep deepest exit");
                let expected = ((len as f64 * pct).round() as usize).clamp(1, len);
                assert!(
                    p.count_executed() <= expected,
                    "len={len} pct={pct}: {} executed",
                    p.count_executed()
                );
                assert!(p.count_executed() >= 1);
            }
        }
        assert_eq!(ExitPlan::static_percent(4, 1.0), ExitPlan::full(4));
    }

    #[test]
    fn uniform_skip_counts() {
        let p = ExitPlan::uniform_skip(40, 0);
        assert_eq!(p.count_executed(), 40);
        let p = ExitPlan::uniform_skip(40, 10);
        assert!(p.count_executed() >= 30 && p.count_executed() < 40);
        // Deepest exit never skipped.
        assert!(p.get(39));
    }

    #[test]
    fn frozen_prefix_merges() {
        let history = ExitPlan::from_bools(&[true, false, true, false]);
        let candidate = ExitPlan::from_bools(&[false, true, false, true]);
        let merged = candidate.with_frozen_prefix(&history, 2);
        assert_eq!(merged.to_bools(), vec![true, false, false, true]);
    }

    #[test]
    fn display_is_bitstring() {
        let p = ExitPlan::from_indices(4, &[0, 3]);
        assert_eq!(p.to_string(), "1001");
    }

    #[test]
    fn iter_executed_in_order() {
        let p = ExitPlan::from_indices(6, &[5, 0, 2]);
        let v: Vec<usize> = p.iter_executed().collect();
        assert_eq!(v, vec![0, 2, 5]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn get_out_of_range_panics() {
        ExitPlan::empty(3).get(3);
    }

    #[test]
    #[should_panic(expected = "plan length")]
    fn rejects_over_64() {
        ExitPlan::empty(65);
    }
}
