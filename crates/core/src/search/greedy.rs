//! Greedy plan augmentation.

use crate::plan::ExitPlan;

/// Starting from `start`, repeatedly sets the single remaining free bit that
/// yields the highest expectation, until every free bit is set; returns the
/// best plan seen along the whole trajectory (Algorithm 2, lines 5–11).
///
/// The paper's greedy keeps adding outputs even past the local peak (it
/// "performs traversal and selection until all branches are selected") and
/// reports the best plan encountered — matching that exactly matters,
/// because the expectation surface is non-monotone in the output count.
///
/// # Panics
///
/// Panics if any free index is out of range.
pub fn greedy_augment(
    start: &ExitPlan,
    start_score: f64,
    free: &[usize],
    eval: &dyn Fn(&ExitPlan) -> f64,
) -> (ExitPlan, f64) {
    for &i in free {
        assert!(i < start.len(), "free index {i} out of range");
    }
    let mut remaining: Vec<usize> = free.iter().copied().filter(|&i| !start.get(i)).collect();
    let mut current = *start;
    let mut best_plan = *start;
    let mut best_score = start_score;
    while !remaining.is_empty() {
        let mut round_best: Option<(usize, ExitPlan, f64)> = None;
        for (slot, &i) in remaining.iter().enumerate() {
            let candidate = current.with(i, true);
            let score = eval(&candidate);
            if round_best.as_ref().is_none_or(|&(_, _, best)| score > best) {
                round_best = Some((slot, candidate, score));
            }
        }
        let (slot, plan, score) = round_best.expect("remaining is non-empty");
        remaining.swap_remove(slot);
        current = plan;
        if score > best_score {
            best_score = score;
            best_plan = plan;
        }
    }
    (best_plan, best_score)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn climbs_to_separable_optimum() {
        // Independent bit rewards: greedy is exact.
        let rewards = [0.5, -0.2, 0.8, -0.1];
        let eval = |p: &ExitPlan| p.iter_executed().map(|i| rewards[i]).sum::<f64>();
        let start = ExitPlan::empty(4);
        let (plan, score) = greedy_augment(&start, 0.0, &[0, 1, 2, 3], &eval);
        assert_eq!(plan, ExitPlan::from_indices(4, &[0, 2]));
        assert!((score - 1.3).abs() < 1e-12);
    }

    #[test]
    fn keeps_best_seen_not_final() {
        // Every added bit costs 1: the best plan is the start itself.
        let eval = |p: &ExitPlan| -(p.count_executed() as f64);
        let start = ExitPlan::empty(3);
        let (plan, score) = greedy_augment(&start, 0.0, &[0, 1, 2], &eval);
        assert_eq!(plan, start);
        assert_eq!(score, 0.0);
    }

    #[test]
    fn continues_past_plateau() {
        // Reward only when exactly bits {0,1,2} are all set; the path there
        // passes through worse plans — greedy still reaches it because it
        // runs to exhaustion.
        let eval = |p: &ExitPlan| {
            if p.count_executed() == 3 {
                10.0
            } else {
                -(p.count_executed() as f64)
            }
        };
        let start = ExitPlan::empty(3);
        let (plan, score) = greedy_augment(&start, 0.0, &[0, 1, 2], &eval);
        assert_eq!(plan, ExitPlan::full(3));
        assert_eq!(score, 10.0);
    }

    #[test]
    fn respects_already_set_bits() {
        let start = ExitPlan::from_indices(4, &[1]);
        let eval = |p: &ExitPlan| p.count_executed() as f64;
        let (plan, _) = greedy_augment(&start, 1.0, &[2, 3], &eval);
        assert!(plan.get(1));
        assert!(plan.get(2) && plan.get(3));
        assert!(!plan.get(0), "bit 0 was not free");
    }

    #[test]
    fn empty_free_set_is_identity() {
        let start = ExitPlan::from_indices(3, &[0]);
        let (plan, score) = greedy_augment(&start, 42.0, &[], &|_| 0.0);
        assert_eq!(plan, start);
        assert_eq!(score, 42.0);
    }
}
