//! The hybrid search algorithm (Algorithm 2).

use std::cell::Cell;

use einet_trace::{self as trace, Args, Category};

use crate::plan::ExitPlan;
use crate::search::enumerate::enumerate_prefix;
use crate::search::greedy::greedy_augment;

/// Two-stage search (Algorithm 2): exhaustively enumerate all `2^m`
/// execute/skip assignments of the **first `m` free branches** (guaranteed
/// optimal over that prefix), then greedily augment the winner over the
/// remaining free positions, keeping the best plan seen anywhere.
///
/// For models with few exits this degenerates to full enumeration (optimal);
/// for the 40-exit MSDNet it finds near-optimal plans in `2^m + (n-m)^2`
/// expectation evaluations instead of `2^n` — sub-millisecond at the
/// paper's `m = 4..5` sweet spot (Fig. 12).
///
/// # Panics
///
/// Panics if any free index is out of range.
pub fn hybrid_search(
    base: &ExitPlan,
    free: &[usize],
    enum_outputs: usize,
    eval: &dyn Fn(&ExitPlan) -> f64,
) -> (ExitPlan, f64) {
    let m = enum_outputs.min(free.len());
    if !trace::enabled() {
        // Stage 1: exhaustive enumeration over the first m free branches
        // (Algorithm 2, lines 1-2).
        let (enum_plan, enum_score) = enumerate_prefix(base, &free[..m], eval);
        // Stage 2: greedy over the remaining branches from the enumeration
        // optimum (lines 3-11).
        return greedy_augment(&enum_plan, enum_score, &free[m..], eval);
    }
    // Traced variant of the same two stages: one span per stage plus a
    // counter of plans scored, with the eval wrapped to count candidates.
    let scored = Cell::new(0_u64);
    let counted = |p: &ExitPlan| {
        scored.set(scored.get() + 1);
        eval(p)
    };
    let (enum_plan, enum_score) = {
        let _s = trace::span_args(
            Category::Search,
            "enumerate",
            Args::one("branches", m as u64),
        );
        enumerate_prefix(base, &free[..m], &counted)
    };
    let result = {
        let _s = trace::span_args(
            Category::Search,
            "greedy",
            Args::one("branches", (free.len() - m) as u64),
        );
        greedy_augment(&enum_plan, enum_score, &free[m..], &counted)
    };
    trace::counter(Category::Search, "candidates_scored", scored.get());
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deliberately deceptive objective: pairs (0,1) and (2,3) only pay
    /// when complete, single bits cost a little. Pure greedy from the empty
    /// plan stalls; enumeration over 2 outputs finds a pair first.
    fn paired_eval(p: &ExitPlan) -> f64 {
        let b: Vec<bool> = p.to_bools();
        let mut score = 0.0;
        if b[0] && b[1] {
            score += 2.0;
        }
        if b[2] && b[3] {
            score += 2.0;
        }
        score - 0.1 * p.count_executed() as f64
    }

    #[test]
    fn hybrid_beats_pure_greedy_on_deceptive_objective() {
        let base = ExitPlan::empty(4);
        let free = [0_usize, 1, 2, 3];
        let (_, greedy_score) =
            crate::search::greedy::greedy_augment(&base, paired_eval(&base), &free, &paired_eval);
        let (hybrid_plan, hybrid_score) = hybrid_search(&base, &free, 2, &paired_eval);
        assert!(hybrid_score >= greedy_score);
        assert_eq!(hybrid_plan, ExitPlan::full(4));
        assert!((hybrid_score - 3.6).abs() < 1e-12);
    }

    #[test]
    fn full_budget_is_exhaustive() {
        let base = ExitPlan::empty(4);
        let free = [0_usize, 1, 2, 3];
        let (plan, score) = hybrid_search(&base, &free, 4, &paired_eval);
        // Brute force.
        let mut best = f64::NEG_INFINITY;
        for bits in 0..16_u64 {
            let mut p = ExitPlan::empty(4);
            for i in 0..4 {
                p.set(i, (bits >> i) & 1 == 1);
            }
            best = best.max(paired_eval(&p));
        }
        assert!((score - best).abs() < 1e-12);
        let _ = plan;
    }

    #[test]
    fn zero_budget_reduces_to_greedy() {
        let base = ExitPlan::empty(3);
        let eval = |p: &ExitPlan| p.iter_executed().map(|i| [0.3, -0.5, 0.7][i]).sum::<f64>();
        let (plan, score) = hybrid_search(&base, &[0, 1, 2], 0, &eval);
        assert_eq!(plan, ExitPlan::from_indices(3, &[0, 2]));
        assert!((score - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_free_returns_base() {
        let base = ExitPlan::from_indices(3, &[1]);
        let eval = |p: &ExitPlan| p.count_executed() as f64;
        let (plan, score) = hybrid_search(&base, &[], 4, &eval);
        assert_eq!(plan, base);
        assert_eq!(score, 1.0);
    }
}
