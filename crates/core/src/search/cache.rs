//! A prefix-expectation memo for plan search.
//!
//! Every plan score is a left-to-right scan over the exits
//! (`expectation::scan_exits`), and the scan state after depth `d` depends
//! only on the plan bits `< d`. Search evaluates thousands of plans per
//! re-plan step that share long prefixes — the hybrid search's greedy stage
//! holds the first `m` bits fixed while toggling deeper ones — so the memo
//! stores scan states keyed by `(depth, prefix bits)` at fixed checkpoint
//! depths and resumes from the deepest matching checkpoint instead of
//! rescanning from exit 0.
//!
//! **Invariant: cached states are only valid for one `(profile,
//! distribution, confidences)` triple.** The online loop re-plans with fresh
//! confidences after every output, so [`ExpectationCache::begin_step`] must
//! run (and does, inside [`SearchEngine::search_cached`]) at every step; it
//! clears the map but keeps the cumulative hit/miss counters that
//! `table3_cache` reports.
//!
//! **Invariant: resumed scans are bit-identical to fresh scans.** A resume
//! replays exactly the op sequence a full scan would execute from that
//! depth, and the stored state is itself the product of the same ops — so
//! plans and scores are unchanged whether the cache is on or off (asserted
//! in `tests/search_cache_parity.rs`).
//!
//! [`SearchEngine::search_cached`]: crate::SearchEngine::search_cached

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use einet_profile::EtProfile;

use crate::expectation::{scan_close, scan_exits, ScanState};
use crate::plan::ExitPlan;
use crate::time_dist::TimeDistribution;

/// Checkpoint spacing in exits. Coarser spacing means fewer map probes and
/// inserts per evaluation (the overhead side of the trade), finer spacing
/// skips more of the scan on a hit. 16 is the break-even sweet spot measured
/// on the paper's 21- and 40-exit MSDNets (`table3_cache` bench).
const CHECKPOINT_EVERY: usize = 16;

/// Cumulative cache effectiveness counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Evaluations that resumed from a cached prefix state.
    pub hits: u64,
    /// Evaluations that scanned from exit 0.
    pub misses: u64,
    /// Exits skipped thanks to resumed scans (scan work saved).
    pub exits_skipped: u64,
}

impl CacheStats {
    /// Hits over total lookups, or 0 when nothing was evaluated.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Multiply-rotate hasher for the `(depth, prefix bits)` key. The default
/// SipHash costs more than the 8-exit scan a checkpoint hit saves; this
/// folds the two words in a handful of cycles. Keys are not
/// attacker-controlled (they come from the search's own plan enumeration),
/// so a non-hardened hash is fine.
#[derive(Default)]
struct PrefixKeyHasher(u64);

impl PrefixKeyHasher {
    #[inline]
    fn mix(&mut self, v: u64) {
        self.0 = (self.0 ^ v)
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .rotate_left(26);
    }
}

impl Hasher for PrefixKeyHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix(u64::from(b));
        }
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }
}

/// The prefix-expectation memo. See the module docs for the validity
/// invariants.
#[derive(Debug, Default)]
pub struct ExpectationCache {
    /// `(checkpoint depth, plan bits below that depth)` → scan state.
    states: HashMap<(u32, u64), ScanState, BuildHasherDefault<PrefixKeyHasher>>,
    stats: CacheStats,
}

impl ExpectationCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Invalidates all cached states (new confidences / profile /
    /// distribution). Counters are cumulative and survive.
    pub fn begin_step(&mut self) {
        self.states.clear();
    }

    /// Cumulative hit/miss counters since construction.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Cached states currently held.
    pub fn len(&self) -> usize {
        self.states.len()
    }

    /// Whether the cache currently holds no states.
    pub fn is_empty(&self) -> bool {
        self.states.is_empty()
    }

    /// Scores `plan`, resuming from the deepest cached prefix state and
    /// recording checkpoints along the way. Identical result to
    /// [`expectation`](crate::expectation) — see the module invariants.
    ///
    /// # Panics
    ///
    /// Panics if lengths disagree.
    pub fn evaluate(
        &mut self,
        et: &EtProfile,
        dist: &TimeDistribution,
        plan: &ExitPlan,
        confidences: &[f32],
    ) -> f64 {
        let n = et.num_exits();
        assert_eq!(plan.len(), n, "plan/profile length mismatch");
        assert_eq!(confidences.len(), n, "confidence/profile length mismatch");
        let bits = plan.bits();
        // Deepest checkpoint depth first.
        let mut depth = (n / CHECKPOINT_EVERY) * CHECKPOINT_EVERY;
        let mut state = ScanState::START;
        let mut resumed = false;
        while depth > 0 {
            if let Some(&s) = self.states.get(&(depth as u32, prefix_bits(bits, depth))) {
                state = s;
                resumed = true;
                break;
            }
            depth -= CHECKPOINT_EVERY;
        }
        if resumed {
            self.stats.hits += 1;
            self.stats.exits_skipped += depth as u64;
        } else {
            self.stats.misses += 1;
        }
        // Scan the rest, dropping a checkpoint at every multiple of the
        // spacing we pass through.
        let mut at = depth;
        while at + CHECKPOINT_EVERY <= n {
            let next = at + CHECKPOINT_EVERY;
            state = scan_exits(et, dist, plan, confidences, state, at, next);
            self.states
                .entry((next as u32, prefix_bits(bits, next)))
                .or_insert(state);
            at = next;
        }
        state = scan_exits(et, dist, plan, confidences, state, at, n);
        scan_close(et, dist, state)
    }
}

/// The plan bits strictly below `depth` (the part of the key a prefix state
/// depends on).
fn prefix_bits(bits: u64, depth: usize) -> u64 {
    if depth >= 64 {
        bits
    } else {
        bits & ((1_u64 << depth) - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expectation::expectation;

    fn profile(n: usize) -> EtProfile {
        let conv: Vec<f64> = (0..n).map(|i| 0.7 + 0.1 * (i % 5) as f64).collect();
        let branch: Vec<f64> = (0..n).map(|i| 0.2 + 0.05 * (i % 3) as f64).collect();
        EtProfile::new(conv, branch).unwrap()
    }

    fn confs(n: usize) -> Vec<f32> {
        (0..n).map(|i| 0.3 + 0.6 * (i as f32 / n as f32)).collect()
    }

    #[test]
    fn cached_scores_are_bitwise_equal_to_uncached() {
        let n = 20;
        let (et, dist, c) = (profile(n), TimeDistribution::gaussian(0.4), confs(n));
        let mut cache = ExpectationCache::new();
        cache.begin_step();
        for base in (0..4000_u64).map(|b| b.wrapping_mul(0x9E37_79B9) % (1 << n)) {
            // The second plan of each pair toggles a bit past the checkpoint
            // depth, so it shares the 16-bit prefix and must hit.
            for bits in [base, base ^ (1 << (n - 1))] {
                let mut plan = ExitPlan::empty(n);
                for i in 0..n {
                    plan.set(i, (bits >> i) & 1 == 1);
                }
                let cached = cache.evaluate(&et, &dist, &plan, &c);
                let direct = expectation(&et, &dist, &plan, &c);
                assert_eq!(
                    cached.to_bits(),
                    direct.to_bits(),
                    "plan {plan}: cached {cached} vs direct {direct}"
                );
            }
        }
        assert!(cache.stats().hits >= 4000, "shared prefixes must hit");
    }

    #[test]
    fn repeat_evaluations_hit() {
        let n = 16;
        let (et, dist, c) = (profile(n), TimeDistribution::Uniform, confs(n));
        let mut cache = ExpectationCache::new();
        let plan = ExitPlan::from_indices(n, &[2, 9, 15]);
        cache.evaluate(&et, &dist, &plan, &c);
        assert_eq!(cache.stats().misses, 1);
        cache.evaluate(&et, &dist, &plan, &c);
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert_eq!(s.exits_skipped, 16);
    }

    #[test]
    fn begin_step_clears_states_but_not_counters() {
        let n = 18; // past the checkpoint spacing so a state gets stored

        let (et, dist, c) = (profile(n), TimeDistribution::Uniform, confs(n));
        let mut cache = ExpectationCache::new();
        cache.evaluate(&et, &dist, &ExitPlan::full(n), &c);
        assert!(!cache.is_empty());
        let before = cache.stats();
        cache.begin_step();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), before);
    }

    #[test]
    fn short_plans_never_checkpoint_but_still_score() {
        let n = 5; // below the checkpoint spacing
        let (et, dist, c) = (profile(n), TimeDistribution::Uniform, confs(n));
        let mut cache = ExpectationCache::new();
        let plan = ExitPlan::from_indices(n, &[1, 4]);
        let got = cache.evaluate(&et, &dist, &plan, &c);
        assert_eq!(got.to_bits(), expectation(&et, &dist, &plan, &c).to_bits());
        assert!(cache.is_empty());
        assert_eq!(cache.stats().hits, 0);
    }

    #[test]
    fn hit_rate_arithmetic() {
        let s = CacheStats {
            hits: 3,
            misses: 1,
            exits_skipped: 24,
        };
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }
}
