//! Exit-plan search (Algorithm 2 and its baselines).
//!
//! The search space over `n` exits has `2ⁿ` plans; the hybrid search of the
//! paper combines exhaustive enumeration over the *first few branches* with
//! greedy augmentation over the rest, bringing the cost to
//! `2^m + O(n²)` expectation evaluations while staying near-optimal.
//!
//! All searchers operate through a plan-scoring closure so the same code
//! serves offline planning (average profiles), online replanning (frozen
//! history prefix + predicted future confidences), and ground-truth studies.

mod cache;
mod enumerate;
mod greedy;
mod hybrid;
mod random;

pub use cache::{CacheStats, ExpectationCache};
pub use enumerate::{enumerate_best, enumerate_prefix};
pub use greedy::greedy_augment;
pub use hybrid::hybrid_search;
pub use random::random_search;

use std::cell::RefCell;

use einet_profile::EtProfile;

use crate::expectation::expectation;
use crate::plan::ExitPlan;
use crate::time_dist::TimeDistribution;

/// The online Search Engine of EINet: hybrid search configured with the
/// number of leading branches to enumerate exhaustively (Fig. 12 shows 4-5
/// to be the sweet spot).
///
/// # Example
///
/// ```
/// use einet_core::{SearchEngine, TimeDistribution};
/// use einet_profile::EtProfile;
///
/// let et = EtProfile::new(vec![1.0; 6], vec![0.4; 6])?;
/// let dist = TimeDistribution::Uniform;
/// let engine = SearchEngine::new(4);
/// let confs = [0.3, 0.45, 0.6, 0.7, 0.85, 0.95];
/// let (plan, score) = engine.search(&et, &dist, &confs, 0, None);
/// assert!(score > 0.0);
/// assert_eq!(plan.len(), 6);
/// # Ok::<(), einet_profile::ProfileIoError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SearchEngine {
    enum_outputs: usize,
}

impl SearchEngine {
    /// Creates an engine that exhaustively enumerates the first
    /// `enum_outputs` free branches before greedy augmentation.
    pub fn new(enum_outputs: usize) -> Self {
        SearchEngine { enum_outputs }
    }

    /// The number of leading branches enumerated exhaustively.
    pub fn enum_outputs(&self) -> usize {
        self.enum_outputs
    }

    /// Searches for a near-optimal plan.
    ///
    /// * `confidences` — actual scores for executed exits, predicted for the
    ///   rest (the `O'` list of Eq. 1).
    /// * `frozen_prefix` — the first `frozen_prefix` exits already lie in
    ///   the past; their bits are pinned to `history` and only deeper bits
    ///   are searched.
    /// * `history` — the plan actually executed so far (required when
    ///   `frozen_prefix > 0`).
    ///
    /// Returns the best plan found and its expectation.
    ///
    /// # Panics
    ///
    /// Panics if `frozen_prefix > 0` but `history` is `None`, or lengths
    /// disagree.
    pub fn search(
        &self,
        et: &EtProfile,
        dist: &TimeDistribution,
        confidences: &[f32],
        frozen_prefix: usize,
        history: Option<&ExitPlan>,
    ) -> (ExitPlan, f64) {
        let n = et.num_exits();
        assert!(frozen_prefix <= n, "prefix out of range");
        let base = match history {
            Some(h) => {
                assert_eq!(h.len(), n, "history length mismatch");
                let mut b = ExitPlan::empty(n);
                for i in 0..frozen_prefix {
                    b.set(i, h.get(i));
                }
                b
            }
            None => {
                assert_eq!(frozen_prefix, 0, "frozen prefix requires history");
                ExitPlan::empty(n)
            }
        };
        let free: Vec<usize> = (frozen_prefix..n).collect();
        let eval = |p: &ExitPlan| expectation(et, dist, p, confidences);
        hybrid_search(&base, &free, self.enum_outputs, &eval)
    }

    /// [`SearchEngine::search`] scoring plans through a prefix-expectation
    /// memo. Returns the same plan and a bit-identical score (the memo
    /// resumes the identical scan op sequence; see `search::cache`), while
    /// skipping the shared-prefix part of most scans — the hybrid search's
    /// stages re-score thousands of plans that differ only in deep bits.
    ///
    /// The cache is invalidated (`begin_step`) on entry, because each call
    /// carries fresh confidences; pass the same cache across calls so its
    /// cumulative [`CacheStats`] track a whole run.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`SearchEngine::search`].
    pub fn search_cached(
        &self,
        et: &EtProfile,
        dist: &TimeDistribution,
        confidences: &[f32],
        frozen_prefix: usize,
        history: Option<&ExitPlan>,
        cache: &mut ExpectationCache,
    ) -> (ExitPlan, f64) {
        let n = et.num_exits();
        assert!(frozen_prefix <= n, "prefix out of range");
        let base = match history {
            Some(h) => {
                assert_eq!(h.len(), n, "history length mismatch");
                let mut b = ExitPlan::empty(n);
                for i in 0..frozen_prefix {
                    b.set(i, h.get(i));
                }
                b
            }
            None => {
                assert_eq!(frozen_prefix, 0, "frozen prefix requires history");
                ExitPlan::empty(n)
            }
        };
        cache.begin_step();
        let stats_before = cache.stats();
        let free: Vec<usize> = (frozen_prefix..n).collect();
        let cache = RefCell::new(cache);
        let eval = |p: &ExitPlan| cache.borrow_mut().evaluate(et, dist, p, confidences);
        let result = hybrid_search(&base, &free, self.enum_outputs, &eval);
        if einet_trace::enabled() {
            let delta_stats = cache.borrow().stats();
            einet_trace::counter(
                einet_trace::Category::Search,
                "cache_hits",
                delta_stats.hits - stats_before.hits,
            );
            einet_trace::counter(
                einet_trace::Category::Search,
                "cache_misses",
                delta_stats.misses - stats_before.misses,
            );
        }
        result
    }
}

impl Default for SearchEngine {
    /// The Fig. 12 sweet spot: enumerate the first four branches.
    fn default() -> Self {
        SearchEngine::new(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (EtProfile, TimeDistribution, Vec<f32>) {
        let et = EtProfile::new(
            vec![1.0, 0.8, 1.2, 0.9, 1.1, 1.0],
            vec![0.3, 0.4, 0.35, 0.5, 0.3, 0.45],
        )
        .unwrap();
        (
            et,
            TimeDistribution::Uniform,
            vec![0.35, 0.5, 0.55, 0.7, 0.8, 0.93],
        )
    }

    #[test]
    fn engine_matches_exhaustive_on_small_models() {
        let (et, dist, confs) = setup();
        let engine = SearchEngine::new(6); // full enumeration budget
        let (plan, score) = engine.search(&et, &dist, &confs, 0, None);
        // Brute force over all 2^6 plans.
        let mut best = f64::NEG_INFINITY;
        let mut best_plan = ExitPlan::empty(6);
        for bits in 0..64_u64 {
            let mut p = ExitPlan::empty(6);
            for i in 0..6 {
                p.set(i, (bits >> i) & 1 == 1);
            }
            let e = expectation(&et, &dist, &p, &confs);
            if e > best {
                best = e;
                best_plan = p;
            }
        }
        assert!(
            (score - best).abs() < 1e-12,
            "engine {score} vs brute {best}"
        );
        assert_eq!(plan, best_plan);
    }

    #[test]
    fn frozen_prefix_is_respected() {
        let (et, dist, confs) = setup();
        let engine = SearchEngine::default();
        let mut history = ExitPlan::empty(6);
        history.set(0, true);
        history.set(1, false);
        let (plan, _) = engine.search(&et, &dist, &confs, 2, Some(&history));
        assert!(plan.get(0));
        assert!(!plan.get(1));
    }

    #[test]
    fn larger_budget_never_worse() {
        let (et, dist, confs) = setup();
        let (_, small) = SearchEngine::new(1).search(&et, &dist, &confs, 0, None);
        let (_, large) = SearchEngine::new(6).search(&et, &dist, &confs, 0, None);
        assert!(large >= small - 1e-12);
    }

    #[test]
    #[should_panic(expected = "requires history")]
    fn prefix_without_history_panics() {
        let (et, dist, confs) = setup();
        SearchEngine::default().search(&et, &dist, &confs, 1, None);
    }
}
