//! Random plan search (the "Random" baseline of Fig. 13 and the
//! random-search EINet variant of Fig. 9).

use rand::rngs::SmallRng;
use rand::Rng;

use crate::plan::ExitPlan;

/// Evaluates `tries` uniformly random settings of the `free` positions on
/// top of `base` and returns the best plan found (the base itself is always
/// a candidate).
///
/// The paper's Random baseline samples 10,000 plans; it scores comparably to
/// hybrid search but takes ~20× longer (Section VI-C3).
///
/// # Panics
///
/// Panics if any free index is out of range.
pub fn random_search(
    base: &ExitPlan,
    free: &[usize],
    tries: usize,
    eval: &dyn Fn(&ExitPlan) -> f64,
    rng: &mut SmallRng,
) -> (ExitPlan, f64) {
    for &i in free {
        assert!(i < base.len(), "free index {i} out of range");
    }
    let mut best_plan = *base;
    let mut best_score = eval(base);
    for _ in 0..tries {
        let mut plan = *base;
        for &i in free {
            plan.set(i, rng.gen_bool(0.5));
        }
        let score = eval(&plan);
        if score > best_score {
            best_score = score;
            best_plan = plan;
        }
    }
    (best_plan, best_score)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn finds_optimum_on_tiny_space() {
        let mut rng = SmallRng::seed_from_u64(5);
        let eval = |p: &ExitPlan| p.iter_executed().map(|i| [1.0, -1.0, 2.0][i]).sum::<f64>();
        let base = ExitPlan::empty(3);
        let (plan, score) = random_search(&base, &[0, 1, 2], 200, &eval, &mut rng);
        assert_eq!(plan, ExitPlan::from_indices(3, &[0, 2]));
        assert!((score - 3.0).abs() < 1e-12);
    }

    #[test]
    fn never_worse_than_base() {
        let mut rng = SmallRng::seed_from_u64(9);
        let eval = |p: &ExitPlan| -(p.count_executed() as f64);
        let base = ExitPlan::empty(8);
        let (_, score) = random_search(&base, &(0..8).collect::<Vec<_>>(), 50, &eval, &mut rng);
        assert_eq!(score, 0.0);
    }

    #[test]
    fn more_tries_never_hurt() {
        let eval = |p: &ExitPlan| {
            p.iter_executed()
                .map(|i| ((i * 7919) % 13) as f64 - 6.0)
                .sum::<f64>()
        };
        let base = ExitPlan::empty(12);
        let free: Vec<usize> = (0..12).collect();
        let mut r1 = SmallRng::seed_from_u64(3);
        let mut r2 = SmallRng::seed_from_u64(3);
        let (_, few) = random_search(&base, &free, 10, &eval, &mut r1);
        let (_, many) = random_search(&base, &free, 1000, &eval, &mut r2);
        assert!(many >= few);
    }

    #[test]
    fn respects_frozen_bits() {
        let mut rng = SmallRng::seed_from_u64(11);
        let base = ExitPlan::from_indices(4, &[0]);
        let eval = |_: &ExitPlan| 0.0;
        let (plan, _) = random_search(&base, &[2, 3], 20, &eval, &mut rng);
        assert!(plan.get(0), "non-free base bit must persist");
        assert!(!plan.get(1), "non-free clear bit must stay clear");
    }
}
