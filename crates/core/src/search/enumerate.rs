//! Exhaustive enumeration over bounded-output plans.

use crate::plan::ExitPlan;

/// Enumerates every plan obtained by executing **at most** `max_outputs` of
/// the `free` positions on top of `base`, returning the best plan and score.
///
/// With `max_outputs = free.len()` this is a full `2^|free|` exhaustive
/// search — optimal but exponential, which is why the paper bounds the
/// budget (a 40-exit model would take ~40 days to enumerate fully).
///
/// # Panics
///
/// Panics if any free index is out of range of `base`.
pub fn enumerate_best(
    base: &ExitPlan,
    free: &[usize],
    max_outputs: usize,
    eval: &dyn Fn(&ExitPlan) -> f64,
) -> (ExitPlan, f64) {
    for &i in free {
        assert!(i < base.len(), "free index {i} out of range");
    }
    let mut best_plan = *base;
    let mut best_score = eval(base);
    let budget = max_outputs.min(free.len());
    // Depth-first over combinations of free positions with ≤ budget set.
    let mut chosen: Vec<usize> = Vec::with_capacity(budget);
    #[allow(clippy::too_many_arguments)]
    fn recurse(
        base: &ExitPlan,
        free: &[usize],
        start: usize,
        budget: usize,
        chosen: &mut Vec<usize>,
        eval: &dyn Fn(&ExitPlan) -> f64,
        best_plan: &mut ExitPlan,
        best_score: &mut f64,
    ) {
        if chosen.len() == budget || start == free.len() {
            return;
        }
        for k in start..free.len() {
            chosen.push(free[k]);
            let mut plan = *base;
            for &i in chosen.iter() {
                plan.set(i, true);
            }
            let score = eval(&plan);
            if score > *best_score {
                *best_score = score;
                *best_plan = plan;
            }
            recurse(
                base,
                free,
                k + 1,
                budget,
                chosen,
                eval,
                best_plan,
                best_score,
            );
            chosen.pop();
        }
    }
    recurse(
        base,
        free,
        0,
        budget,
        &mut chosen,
        eval,
        &mut best_plan,
        &mut best_score,
    );
    (best_plan, best_score)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Score = number of executed bits among {1, 3} minus executed bits
    /// elsewhere — optimum is exactly {1, 3}.
    fn toy_eval(p: &ExitPlan) -> f64 {
        let mut s = 0.0;
        for i in p.iter_executed() {
            s += if i == 1 || i == 3 { 1.0 } else { -1.0 };
        }
        s
    }

    #[test]
    fn finds_exact_optimum_with_enough_budget() {
        let base = ExitPlan::empty(5);
        let free: Vec<usize> = (0..5).collect();
        let (plan, score) = enumerate_best(&base, &free, 5, &toy_eval);
        assert_eq!(score, 2.0);
        assert_eq!(plan, ExitPlan::from_indices(5, &[1, 3]));
    }

    #[test]
    fn budget_limits_outputs() {
        let base = ExitPlan::empty(5);
        let free: Vec<usize> = (0..5).collect();
        let (plan, score) = enumerate_best(&base, &free, 1, &toy_eval);
        assert_eq!(score, 1.0);
        assert_eq!(plan.count_executed(), 1);
    }

    #[test]
    fn respects_base_bits() {
        let base = ExitPlan::from_indices(5, &[0]);
        let free = [1_usize, 2, 3];
        let (plan, _) = enumerate_best(&base, &free, 3, &toy_eval);
        assert!(plan.get(0), "base bits must persist");
        assert!(!plan.get(4), "non-free bits must stay clear");
    }

    #[test]
    fn zero_budget_returns_base() {
        let base = ExitPlan::from_indices(4, &[2]);
        let (plan, score) = enumerate_best(&base, &[0, 1, 3], 0, &toy_eval);
        assert_eq!(plan, base);
        assert_eq!(score, toy_eval(&base));
    }

    #[test]
    fn visits_every_combination() {
        // Count evaluations: sum of C(4, k) for k=1..=2 is 4 + 6 = 10, plus
        // the base evaluation.
        use std::cell::Cell;
        let count = Cell::new(0usize);
        let eval = |_: &ExitPlan| {
            count.set(count.get() + 1);
            0.0
        };
        let base = ExitPlan::empty(4);
        enumerate_best(&base, &[0, 1, 2, 3], 2, &eval);
        assert_eq!(count.get(), 11);
    }
}

/// Enumerates **all** `2^positions.len()` execute/skip assignments of the
/// given positions on top of `base` — the first stage of the paper's hybrid
/// search, which exhaustively decides the *first m branches* (Algorithm 2,
/// line 1) rather than bounding the output count.
///
/// # Panics
///
/// Panics if any position is out of range or more than 20 positions are
/// given (2^20 plans is already far past the practical budget).
pub fn enumerate_prefix(
    base: &ExitPlan,
    positions: &[usize],
    eval: &dyn Fn(&ExitPlan) -> f64,
) -> (ExitPlan, f64) {
    assert!(
        positions.len() <= 20,
        "prefix enumeration over {} positions is intractable",
        positions.len()
    );
    for &i in positions {
        assert!(i < base.len(), "position {i} out of range");
    }
    let mut best_plan = *base;
    let mut best_score = f64::NEG_INFINITY;
    for bits in 0..(1_u64 << positions.len()) {
        let mut plan = *base;
        for (k, &i) in positions.iter().enumerate() {
            plan.set(i, (bits >> k) & 1 == 1);
        }
        let score = eval(&plan);
        if score > best_score {
            best_score = score;
            best_plan = plan;
        }
    }
    (best_plan, best_score)
}

#[cfg(test)]
mod prefix_tests {
    use super::*;

    #[test]
    fn prefix_enumeration_is_exhaustive_over_positions() {
        // Optimum over bits {0,2} with bit 1 frozen off.
        let eval = |p: &ExitPlan| {
            let b = p.to_bools();
            (if b[0] { 2.0 } else { 0.0 }) + (if b[2] { -1.0 } else { 0.5 })
        };
        let base = ExitPlan::empty(3);
        let (plan, score) = enumerate_prefix(&base, &[0, 2], &eval);
        assert_eq!(plan, ExitPlan::from_indices(3, &[0]));
        assert!((score - 2.5).abs() < 1e-12);
    }

    #[test]
    fn empty_positions_return_base() {
        let base = ExitPlan::from_indices(4, &[1]);
        let eval = |p: &ExitPlan| p.count_executed() as f64;
        let (plan, score) = enumerate_prefix(&base, &[], &eval);
        assert_eq!(plan, base);
        assert_eq!(score, 1.0);
    }
}
