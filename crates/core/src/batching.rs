//! Online cost model for adaptive batch coalescing.
//!
//! The serving pool can hold the queue head briefly to let compatible
//! requests accumulate into one batched forward. Holding is only worth it
//! when the per-sample service-time saving from a larger batch exceeds the
//! queue delay the hold adds. [`BatchGainModel`] learns both sides of that
//! trade-off online from observed service times and inter-arrival gaps, and
//! answers one question: *given `b` tasks in hand, how long may I wait for
//! a `(b+1)`-th?*
//!
//! The model is deliberately tiny — EWMAs only, no allocation after
//! construction — because it is consulted under the scheduler lock.

/// EWMA smoothing factor: new observations carry 20% weight.
const EWMA_ALPHA: f64 = 0.2;

/// Maximum batch size the model keeps statistics for. Larger batches are
/// rescaled into the last slot; extrapolation covers the tail.
pub const MAX_TRACKED_BATCH: usize = 32;

/// Arrival gaps larger than `IDLE_GAP_FACTOR ×` the current EWMA are treated
/// as idle-period boundaries rather than arrival-rate evidence and discarded.
const IDLE_GAP_FACTOR: f64 = 8.0;

/// Absolute ceiling (µs) below which a gap is always admitted, so the model
/// can still learn genuinely slow-but-steady streams from a cold start and
/// recover after its EWMA has drifted low. Several × the default batch
/// window: no hold budget ever approaches this, so admitting such gaps can
/// only *disable* holding, never cause a bad hold.
const IDLE_GAP_FLOOR_US: f64 = 5_000.0;

/// Learns batch service-time curves and arrival rates online, and converts
/// them into a hold budget for the batch coalescer.
#[derive(Debug, Clone)]
pub struct BatchGainModel {
    /// `service_us[b-1]` = EWMA of *total* wall time for a batch of `b`,
    /// in microseconds. `None` until first observation.
    service_us: [Option<f64>; MAX_TRACKED_BATCH],
    /// EWMA of the gap between consecutive task arrivals, microseconds.
    arrival_gap_us: Option<f64>,
}

impl Default for BatchGainModel {
    fn default() -> Self {
        Self::new()
    }
}

impl BatchGainModel {
    /// Creates an empty model. With no observations the model never holds:
    /// cold-start is conservative, and batches still form naturally from
    /// queue backlog under load, which in turn warms the model.
    pub fn new() -> Self {
        Self {
            service_us: [None; MAX_TRACKED_BATCH],
            arrival_gap_us: None,
        }
    }

    /// Records that a batch of `batch` samples took `total_us` of service
    /// time end to end.
    ///
    /// Batches beyond [`MAX_TRACKED_BATCH`] are rescaled proportionally into
    /// the last slot (a 42-sample batch's time is recorded as 32/42 of it)
    /// rather than written verbatim, which would inflate the tail of the
    /// curve and skew every interpolation anchored on it.
    pub fn observe_service(&mut self, batch: usize, total_us: u64) {
        if batch == 0 {
            return;
        }
        let mut x = total_us as f64;
        if batch > MAX_TRACKED_BATCH {
            x *= MAX_TRACKED_BATCH as f64 / batch as f64;
        }
        let slot = batch.min(MAX_TRACKED_BATCH) - 1;
        self.service_us[slot] = Some(match self.service_us[slot] {
            Some(prev) => prev + EWMA_ALPHA * (x - prev),
            None => x,
        });
    }

    /// Records the gap since the previous task arrival.
    ///
    /// Gaps that look like idle-period boundaries — more than
    /// [`IDLE_GAP_FACTOR`]× the learned gap, and above [`IDLE_GAP_FLOOR_US`]
    /// — are discarded: one long lull would otherwise drag the EWMA up and
    /// disable batch holding for many requests after traffic resumes, even
    /// though the underlying arrival rate is unchanged.
    pub fn observe_arrival_gap(&mut self, gap_us: u64) {
        let x = gap_us as f64;
        let bound = match self.arrival_gap_us {
            Some(prev) => (prev * IDLE_GAP_FACTOR).max(IDLE_GAP_FLOOR_US),
            None => IDLE_GAP_FLOOR_US,
        };
        if x > bound {
            return;
        }
        self.arrival_gap_us = Some(match self.arrival_gap_us {
            Some(prev) => prev + EWMA_ALPHA * (x - prev),
            None => x,
        });
    }

    /// Expected total service time for a batch of `batch`, in µs.
    ///
    /// Uses the nearest observed sizes: exact slot if seen, otherwise
    /// linear inter-/extrapolation from the observed curve, falling back to
    /// proportional scaling from the closest single point. Returns `None`
    /// when nothing has been observed yet.
    pub fn expected_service_us(&self, batch: usize) -> Option<f64> {
        if batch == 0 {
            return Some(0.0);
        }
        let b = batch.min(MAX_TRACKED_BATCH);
        if let Some(v) = self.service_us[b - 1] {
            return Some(v);
        }
        // Gather observed (size, time) points.
        let pts: Vec<(f64, f64)> = self
            .service_us
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|t| ((i + 1) as f64, t)))
            .collect();
        match pts.len() {
            0 => None,
            1 => {
                // One point: scale linearly through the origin offset —
                // assume per-sample cost is constant (no batching gain
                // assumed until proven).
                let (sz, t) = pts[0];
                Some(t / sz * b as f64)
            }
            _ => {
                // Interpolate between the two nearest observed sizes, or
                // extrapolate from the closest pair at either end.
                let bf = b as f64;
                let (lo, hi) = match pts.iter().position(|&(sz, _)| sz > bf) {
                    Some(0) => (pts[0], pts[1]),
                    Some(i) => (pts[i - 1], pts[i]),
                    None => (pts[pts.len() - 2], pts[pts.len() - 1]),
                };
                let slope = (hi.1 - lo.1) / (hi.0 - lo.0);
                Some((lo.1 + slope * (bf - lo.0)).max(0.0))
            }
        }
    }

    /// Expected arrival gap in µs, if any arrivals have been observed.
    pub fn expected_arrival_gap_us(&self) -> Option<f64> {
        self.arrival_gap_us
    }

    /// How long the coalescer may hold `in_hand` runnable tasks waiting for
    /// one more, in µs. Zero means "dispatch now".
    ///
    /// The rule: adding a sample to the batch is worth at most the service
    /// time it saves versus running that sample alone,
    /// `saving = t(1) + t(b) − t(b+1)`. Holding delays all `in_hand` tasks,
    /// so the budget is `saving / in_hand` — total added queue delay never
    /// exceeds the expected saving. The budget is further gated on the
    /// arrival process: if the expected gap exceeds the budget, the next
    /// task likely won't arrive in time and we don't hold at all.
    pub fn hold_budget_us(&self, in_hand: usize) -> u64 {
        if in_hand == 0 || in_hand >= MAX_TRACKED_BATCH {
            return 0;
        }
        let (Some(t1), Some(tb), Some(tb1)) = (
            self.expected_service_us(1),
            self.expected_service_us(in_hand),
            self.expected_service_us(in_hand + 1),
        ) else {
            return 0;
        };
        let saving = t1 + tb - tb1;
        if saving <= 0.0 {
            return 0;
        }
        let budget = saving / in_hand as f64;
        match self.arrival_gap_us {
            Some(gap) if gap <= budget => budget as u64,
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_model_never_holds() {
        let m = BatchGainModel::new();
        assert_eq!(m.hold_budget_us(1), 0);
        assert_eq!(m.hold_budget_us(4), 0);
        assert_eq!(m.expected_service_us(3), None);
    }

    #[test]
    fn single_point_scales_linearly() {
        let mut m = BatchGainModel::new();
        m.observe_service(2, 1000);
        assert_eq!(m.expected_service_us(1), Some(500.0));
        assert_eq!(m.expected_service_us(4), Some(2000.0));
        // Linear curve ⇒ zero saving ⇒ no hold.
        m.observe_arrival_gap(10);
        assert_eq!(m.hold_budget_us(1), 0);
    }

    #[test]
    fn sublinear_curve_yields_hold_budget() {
        let mut m = BatchGainModel::new();
        // Strongly sublinear: t(1)=1000, t(2)=1200, t(3)=1400.
        m.observe_service(1, 1000);
        m.observe_service(2, 1200);
        m.observe_service(3, 1400);
        m.observe_arrival_gap(100);
        // saving for 1→2 = t(1)+t(1)−t(2) = 800; budget = 800/1 = 800.
        assert_eq!(m.hold_budget_us(1), 800);
        // saving for 2→3 = t(1)+t(2)−t(3) = 800; budget = 800/2 = 400.
        assert_eq!(m.hold_budget_us(2), 400);
    }

    #[test]
    fn slow_arrivals_disable_holding() {
        let mut m = BatchGainModel::new();
        m.observe_service(1, 1000);
        m.observe_service(2, 1200);
        m.observe_arrival_gap(50_000); // arrivals far slower than any gain
        assert_eq!(m.hold_budget_us(1), 0);
    }

    #[test]
    fn interpolates_between_observed_sizes() {
        let mut m = BatchGainModel::new();
        m.observe_service(1, 1000);
        m.observe_service(4, 2500);
        // b=2 interpolated: 1000 + (2500-1000)/3 = 1500.
        assert_eq!(m.expected_service_us(2), Some(1500.0));
        // b=8 extrapolated along the same slope: 2500 + 4*500 = 4500.
        assert_eq!(m.expected_service_us(8), Some(4500.0));
    }

    #[test]
    fn ewma_tracks_shifting_service_times() {
        let mut m = BatchGainModel::new();
        m.observe_service(1, 1000);
        for _ in 0..50 {
            m.observe_service(1, 2000);
        }
        let t = m.expected_service_us(1).unwrap();
        assert!((t - 2000.0).abs() < 50.0, "EWMA should converge: {t}");
    }

    #[test]
    fn oversized_batches_rescale_into_tracked_range() {
        let mut m = BatchGainModel::new();
        let batch = MAX_TRACKED_BATCH + 10;
        m.observe_service(batch, 5000);
        // The 42-sample total is recorded as its 32-sample proportional
        // share, not verbatim — verbatim would make every interpolation
        // anchored on the last slot overestimate.
        let expect = 5000.0 * MAX_TRACKED_BATCH as f64 / batch as f64;
        let got = m.expected_service_us(MAX_TRACKED_BATCH).unwrap();
        assert!((got - expect).abs() < 1e-9, "got {got}, want {expect}");
        assert_eq!(m.hold_budget_us(MAX_TRACKED_BATCH), 0);
    }

    #[test]
    fn oversized_batch_does_not_corrupt_interpolation() {
        let mut m = BatchGainModel::new();
        // Perfectly linear true curve: 100 µs/sample.
        m.observe_service(1, 100);
        m.observe_service(42, 4200);
        // With verbatim clamping the last slot would read 4200 for b=32 and
        // b=16 would interpolate to ~2078; with rescaling the curve stays
        // linear and b=16 reads 1600.
        let got = m.expected_service_us(16).unwrap();
        assert!((got - 1600.0).abs() < 1.0, "corrupted curve: {got}");
    }

    #[test]
    fn idle_gap_does_not_poison_arrival_rate() {
        let mut m = BatchGainModel::new();
        m.observe_service(1, 1000);
        m.observe_service(2, 1200);
        for _ in 0..20 {
            m.observe_arrival_gap(100);
        }
        let before = m.hold_budget_us(1);
        assert!(before > 0, "steady stream should enable holding");
        // A 10-second lull (queue drained, no traffic) must not erase the
        // learned arrival rate.
        m.observe_arrival_gap(10_000_000);
        assert_eq!(m.hold_budget_us(1), before);
        assert!((m.expected_arrival_gap_us().unwrap() - 100.0).abs() < 1.0);
    }

    #[test]
    fn first_gap_observation_ignores_idle_boundary() {
        let mut m = BatchGainModel::new();
        // Cold model whose very first "gap" is an idle period: discarded,
        // so the EWMA starts from the first real inter-arrival gap instead.
        m.observe_arrival_gap(60_000_000);
        assert_eq!(m.expected_arrival_gap_us(), None);
        m.observe_arrival_gap(200);
        assert_eq!(m.expected_arrival_gap_us(), Some(200.0));
    }

    #[test]
    fn moderately_slow_gaps_still_update_the_model() {
        let mut m = BatchGainModel::new();
        for _ in 0..10 {
            m.observe_arrival_gap(100);
        }
        // 4 ms is slow but under the idle floor: it must be admitted so the
        // model can track genuine slowdowns (which correctly disable holds).
        m.observe_arrival_gap(4_000);
        assert!(m.expected_arrival_gap_us().unwrap() > 100.0);
    }
}
