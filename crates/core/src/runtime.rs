//! The elastic-inference runtime (Section V).
//!
//! A simulated-clock executor: conv parts always advance the clock, branches
//! only when the current plan executes them, and an unpredictable kill time
//! cuts the timeline. This mirrors the paper's evaluation methodology, which
//! draws a random inference deadline per sample and scores the last result
//! produced before it.
//!
//! Because profiling already captured each exit's prediction and confidence
//! for every test sample ([`SampleTable`]), the simulation never re-runs the
//! network — only the *planner* (CS-Predictor + Search Engine) runs live,
//! exactly the component under evaluation.

use einet_profile::{CsProfile, EtProfile};
use einet_trace::{self as trace, Args, Category};

use crate::plan::ExitPlan;
use crate::planner::{PlanContext, Planner, PlannerDecision};
use crate::time_dist::TimeDistribution;

/// Everything the simulator needs about one test sample: the confidence and
/// prediction every exit *would* produce, plus the label.
#[derive(Debug, Clone, PartialEq)]
pub struct SampleTable {
    /// Confidence score at each exit.
    pub confidences: Vec<f32>,
    /// Predicted class at each exit.
    pub predictions: Vec<u16>,
    /// Ground-truth label.
    pub label: u16,
}

impl SampleTable {
    /// Extracts sample `i` from a CS-profile.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    pub fn from_profile(profile: &CsProfile, i: usize) -> Self {
        SampleTable {
            confidences: profile.confidences(i).to_vec(),
            predictions: profile.predictions(i).to_vec(),
            label: profile.label(i),
        }
    }

    /// Number of exits.
    pub fn num_exits(&self) -> usize {
        self.confidences.len()
    }
}

/// The result at one exit as recorded by the runtime.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EmittedOutput {
    /// Which exit produced the result.
    pub exit: usize,
    /// The predicted class.
    pub predicted: u16,
    /// The confidence score.
    pub confidence: f32,
}

/// The outcome of one elastic run against one kill time.
#[derive(Debug, Clone, PartialEq)]
pub struct ElasticOutcome {
    /// The most recent output available when the run ended, if any — the
    /// elastic-inference guarantee is that this is what the application
    /// receives instead of nothing.
    pub last: Option<EmittedOutput>,
    /// Whether that output matches the label (`false` when there is none).
    pub correct: bool,
    /// Total outputs produced before the end.
    pub outputs: usize,
    /// Whether inference ran to completion before the kill.
    pub finished: bool,
    /// The kill time used, in milliseconds.
    pub kill_ms: f64,
}

/// Simulated-clock elastic executor binding a profile and a kill-time
/// distribution.
#[derive(Debug, Clone, Copy)]
pub struct ElasticRuntime<'a> {
    et: &'a EtProfile,
    dist: &'a TimeDistribution,
    replan_overhead_ms: f64,
}

impl<'a> ElasticRuntime<'a> {
    /// Creates a runtime with zero replanning overhead (the paper's C search
    /// engine costs ~0.13 ms, negligible against block times; see Table I).
    pub fn new(et: &'a EtProfile, dist: &'a TimeDistribution) -> Self {
        ElasticRuntime {
            et,
            dist,
            replan_overhead_ms: 0.0,
        }
    }

    /// Charges `ms` of clock time at every replanning step, for studying
    /// planner-overhead sensitivity.
    ///
    /// # Panics
    ///
    /// Panics if `ms` is negative.
    #[must_use]
    pub fn with_replan_overhead(mut self, ms: f64) -> Self {
        assert!(ms >= 0.0, "overhead must be non-negative");
        self.replan_overhead_ms = ms;
        self
    }

    /// The profile horizon: the kill time is drawn from `[0, horizon]`.
    pub fn horizon_ms(&self) -> f64 {
        self.et.total_ms()
    }

    /// The profile driving this runtime.
    pub fn profile(&self) -> &EtProfile {
        self.et
    }

    /// The kill-time distribution.
    pub fn distribution(&self) -> &TimeDistribution {
        self.dist
    }

    /// Runs one sample against one kill time under `planner`.
    ///
    /// # Panics
    ///
    /// Panics if the sample's exit count differs from the profile's.
    pub fn run_sample(
        &self,
        table: &SampleTable,
        planner: &mut dyn Planner,
        kill_ms: f64,
    ) -> ElasticOutcome {
        let n = self.et.num_exits();
        assert_eq!(table.num_exits(), n, "sample/profile exit count mismatch");
        planner.reset();
        let conv = self.et.conv_ms();
        let branch = self.et.branch_ms();
        let mut executed: Vec<Option<f32>> = vec![None; n];
        let mut history = ExitPlan::empty(n);
        let mut t = 0.0_f64;
        let mut last: Option<EmittedOutput> = None;
        let mut outputs = 0usize;
        let outcome = |last: Option<EmittedOutput>, outputs: usize, finished: bool| {
            let correct = last.is_some_and(|o| o.predicted == table.label);
            ElasticOutcome {
                last,
                correct,
                outputs,
                finished,
                kill_ms,
            }
        };
        let mut plan = {
            let ctx = PlanContext {
                et: self.et,
                dist: self.dist,
                executed: &executed,
                history: &history,
                next_exit: 0,
            };
            let _replan = trace::span_args(Category::Replan, "initial_plan", Args::none());
            match planner.plan(&ctx) {
                PlannerDecision::Plan(p) => {
                    assert_eq!(p.len(), n, "planner returned wrong plan length");
                    p
                }
                PlannerDecision::Stop => return outcome(None, 0, true),
            }
        };
        for i in 0..n {
            // The span's wall time is the planner-free simulation cost of
            // this block; the simulated clock rides along in the args.
            let block_span = trace::span_args(
                Category::Block,
                "sim_block",
                Args::two("exit", i as u64, "sim_us", (t * 1_000.0) as u64),
            );
            t += conv[i];
            if t > kill_ms {
                return outcome(last, outputs, false);
            }
            if !plan.get(i) {
                continue;
            }
            t += branch[i];
            if t > kill_ms {
                // Killed mid-branch: its result never materialises.
                return outcome(last, outputs, false);
            }
            executed[i] = Some(table.confidences[i]);
            history.set(i, true);
            outputs += 1;
            last = Some(EmittedOutput {
                exit: i,
                predicted: table.predictions[i],
                confidence: table.confidences[i],
            });
            drop(block_span);
            trace::instant(
                Category::Exit,
                "sim_exit",
                Args::two("exit", i as u64, "sim_us", (t * 1_000.0) as u64),
            );
            if i + 1 == n {
                break;
            }
            t += self.replan_overhead_ms;
            if t > kill_ms {
                return outcome(last, outputs, false);
            }
            let ctx = PlanContext {
                et: self.et,
                dist: self.dist,
                executed: &executed,
                history: &history,
                next_exit: i + 1,
            };
            let _replan = trace::span_args(
                Category::Replan,
                "replan",
                Args::one("after_exit", i as u64),
            );
            match planner.plan(&ctx) {
                PlannerDecision::Plan(p) => {
                    assert_eq!(p.len(), n, "planner returned wrong plan length");
                    plan = p.with_frozen_prefix(&history, i + 1);
                }
                PlannerDecision::Stop => return outcome(last, outputs, true),
            }
        }
        outcome(last, outputs, true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::StaticPlanner;

    fn table() -> SampleTable {
        SampleTable {
            confidences: vec![0.4, 0.6, 0.9],
            predictions: vec![2, 7, 7],
            label: 7,
        }
    }

    fn et() -> EtProfile {
        EtProfile::new(vec![1.0, 1.0, 1.0], vec![0.5, 0.5, 0.5]).unwrap()
    }

    #[test]
    fn full_plan_emits_every_output() {
        let et = et();
        let dist = TimeDistribution::Uniform;
        let rt = ElasticRuntime::new(&et, &dist);
        let mut planner = StaticPlanner::new(ExitPlan::full(3), "all");
        let out = rt.run_sample(&table(), &mut planner, 100.0);
        assert!(out.finished);
        assert_eq!(out.outputs, 3);
        assert!(out.correct);
        assert_eq!(out.last.unwrap().exit, 2);
    }

    #[test]
    fn kill_before_first_output_yields_nothing() {
        let et = et();
        let dist = TimeDistribution::Uniform;
        let rt = ElasticRuntime::new(&et, &dist);
        let mut planner = StaticPlanner::new(ExitPlan::full(3), "all");
        // First output needs conv(1.0) + branch(0.5).
        let out = rt.run_sample(&table(), &mut planner, 1.2);
        assert!(out.last.is_none());
        assert!(!out.correct);
        assert_eq!(out.outputs, 0);
    }

    #[test]
    fn kill_mid_branch_keeps_previous_output() {
        let et = et();
        let dist = TimeDistribution::Uniform;
        let rt = ElasticRuntime::new(&et, &dist);
        let mut planner = StaticPlanner::new(ExitPlan::full(3), "all");
        // Exit 0 completes at 1.5; exit 1 would complete at 3.0.
        let out = rt.run_sample(&table(), &mut planner, 2.9);
        let last = out.last.unwrap();
        assert_eq!(last.exit, 0);
        assert_eq!(last.predicted, 2);
        assert!(!out.correct, "exit 0 predicts the wrong class");
    }

    #[test]
    fn skipping_branches_reaches_deep_exit_sooner() {
        let et = et();
        let dist = TimeDistribution::Uniform;
        let rt = ElasticRuntime::new(&et, &dist);
        // With all branches, exit 2 completes at 4.5; last-only completes
        // it at 3.5.
        let mut all = StaticPlanner::new(ExitPlan::full(3), "all");
        let mut last_only = StaticPlanner::new(ExitPlan::last_only(3), "classic");
        let kill = 4.0;
        let out_all = rt.run_sample(&table(), &mut all, kill);
        let out_last = rt.run_sample(&table(), &mut last_only, kill);
        assert_eq!(out_all.last.unwrap().exit, 1);
        assert_eq!(out_last.last.unwrap().exit, 2);
        assert!(out_last.correct);
    }

    #[test]
    fn replan_overhead_delays_outputs() {
        let et = et();
        let dist = TimeDistribution::Uniform;
        let rt = ElasticRuntime::new(&et, &dist).with_replan_overhead(10.0);
        let mut planner = StaticPlanner::new(ExitPlan::full(3), "all");
        // First output at 1.5 still fine; the replanning after it costs 10,
        // so the second output never lands before kill=5.
        let out = rt.run_sample(&table(), &mut planner, 5.0);
        assert_eq!(out.outputs, 1);
    }

    #[test]
    fn zero_kill_time_produces_no_result() {
        let et = et();
        let dist = TimeDistribution::Uniform;
        let rt = ElasticRuntime::new(&et, &dist);
        let mut planner = StaticPlanner::new(ExitPlan::full(3), "all");
        let out = rt.run_sample(&table(), &mut planner, 0.0);
        assert!(out.last.is_none());
        assert!(!out.finished);
    }

    #[test]
    fn horizon_is_total_profile_time() {
        let et = et();
        let dist = TimeDistribution::Uniform;
        let rt = ElasticRuntime::new(&et, &dist);
        assert_eq!(rt.horizon_ms(), 4.5);
    }
}
