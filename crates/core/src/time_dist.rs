//! Kill-time distributions (Section V-A, Fig. 7; Section VI-C3, Fig. 13).

use rand::rngs::SmallRng;
use rand::Rng;

/// The distribution of the unpredictable exit (kill) time over the inference
/// horizon `[0, T]`.
///
/// The accuracy-expectation algorithm weights each inter-output interval by
/// the probability mass the kill time puts on it; real-world preemption can
/// follow "arbitrary curves" (the paper cites automotive benchmarks), which
/// the [`TimeDistribution::Piecewise`] variant models.
#[derive(Debug, Clone, PartialEq)]
pub enum TimeDistribution {
    /// Kill time uniform over `[0, T]` (the paper's default evaluation
    /// setting).
    Uniform,
    /// Truncated Gaussian: mean and standard deviation given as fractions of
    /// the horizon, truncated to `[0, T]`. Fig. 13 uses mean ½ and σ of 0.5
    /// and 1.
    Gaussian {
        /// Mean as a fraction of the horizon.
        mean_frac: f64,
        /// Standard deviation as a fraction of the horizon.
        sigma_frac: f64,
    },
    /// Arbitrary density given as weights over equal-width segments of
    /// `[0, T]`; weights are normalised internally.
    Piecewise {
        /// Non-negative per-segment weights, at least one positive.
        weights: Vec<f64>,
    },
}

impl TimeDistribution {
    /// The Fig. 13 Gaussian with mean `T/2` and the given σ fraction.
    pub fn gaussian(sigma_frac: f64) -> Self {
        assert!(sigma_frac > 0.0, "sigma must be positive");
        TimeDistribution::Gaussian {
            mean_frac: 0.5,
            sigma_frac,
        }
    }

    /// A piecewise density from segment weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, has a negative entry, or sums to zero.
    pub fn piecewise(weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "need at least one segment");
        assert!(
            weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
            "weights must be non-negative and finite"
        );
        assert!(
            weights.iter().sum::<f64>() > 0.0,
            "weights must not all be zero"
        );
        TimeDistribution::Piecewise { weights }
    }

    /// Probability that the kill time falls in `[t0, t1]`, with the
    /// distribution truncated/normalised to `[0, horizon]`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is not positive or `t0 > t1`.
    pub fn mass_between(&self, t0: f64, t1: f64, horizon: f64) -> f64 {
        assert!(horizon > 0.0, "horizon must be positive");
        assert!(t0 <= t1 + 1e-12, "interval must be ordered: {t0} > {t1}");
        let a = t0.clamp(0.0, horizon);
        let b = t1.clamp(0.0, horizon);
        if b <= a {
            return 0.0;
        }
        match self {
            TimeDistribution::Uniform => (b - a) / horizon,
            TimeDistribution::Gaussian {
                mean_frac,
                sigma_frac,
            } => {
                let mu = mean_frac * horizon;
                let sigma = sigma_frac * horizon;
                let total = phi((horizon - mu) / sigma) - phi((0.0 - mu) / sigma);
                if total <= 0.0 {
                    return (b - a) / horizon;
                }
                (phi((b - mu) / sigma) - phi((a - mu) / sigma)) / total
            }
            TimeDistribution::Piecewise { weights } => {
                let total: f64 = weights.iter().sum();
                let seg = horizon / weights.len() as f64;
                let mut mass = 0.0;
                for (i, &w) in weights.iter().enumerate() {
                    let lo = i as f64 * seg;
                    let hi = lo + seg;
                    let overlap = (b.min(hi) - a.max(lo)).max(0.0);
                    mass += w * overlap / seg;
                }
                mass / total
            }
        }
    }

    /// Draws a kill time in `[0, horizon]`.
    ///
    /// # Panics
    ///
    /// Panics if `horizon` is not positive.
    pub fn sample(&self, horizon: f64, rng: &mut SmallRng) -> f64 {
        assert!(horizon > 0.0, "horizon must be positive");
        match self {
            TimeDistribution::Uniform => rng.gen_range(0.0..horizon),
            TimeDistribution::Gaussian {
                mean_frac,
                sigma_frac,
            } => {
                let mu = mean_frac * horizon;
                let sigma = sigma_frac * horizon;
                // Rejection-sample the truncated normal; the acceptance rate
                // is high for the σ values the paper uses.
                for _ in 0..256 {
                    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let u2: f64 = rng.gen_range(0.0..1.0);
                    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
                    let t = mu + sigma * z;
                    if (0.0..horizon).contains(&t) {
                        return t;
                    }
                }
                rng.gen_range(0.0..horizon)
            }
            TimeDistribution::Piecewise { weights } => {
                let total: f64 = weights.iter().sum();
                let mut u = rng.gen_range(0.0..total);
                let seg = horizon / weights.len() as f64;
                for (i, &w) in weights.iter().enumerate() {
                    if u < w {
                        return i as f64 * seg + seg * (u / w.max(f64::MIN_POSITIVE));
                    }
                    u -= w;
                }
                horizon * (1.0 - f64::EPSILON)
            }
        }
    }

    /// Short identifier for reports.
    pub fn id(&self) -> String {
        match self {
            TimeDistribution::Uniform => "uniform".to_string(),
            TimeDistribution::Gaussian { sigma_frac, .. } => format!("gauss-s{sigma_frac}"),
            TimeDistribution::Piecewise { weights } => format!("piecewise-{}", weights.len()),
        }
    }
}

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max error ~1.5e-7, ample for interval weighting).
fn phi(z: f64) -> f64 {
    0.5 * (1.0 + erf(z / std::f64::consts::SQRT_2))
}

fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn uniform_mass_is_length_ratio() {
        let d = TimeDistribution::Uniform;
        assert!((d.mass_between(0.0, 5.0, 10.0) - 0.5).abs() < 1e-12);
        assert!((d.mass_between(0.0, 10.0, 10.0) - 1.0).abs() < 1e-12);
        assert_eq!(d.mass_between(3.0, 3.0, 10.0), 0.0);
    }

    #[test]
    fn masses_partition_to_one() {
        for dist in [
            TimeDistribution::Uniform,
            TimeDistribution::gaussian(0.5),
            TimeDistribution::gaussian(1.0),
            TimeDistribution::piecewise(vec![1.0, 3.0, 0.5, 2.0]),
        ] {
            let horizon = 7.0;
            let cuts = [0.0, 1.3, 2.0, 4.5, 6.1, 7.0];
            let total: f64 = cuts
                .windows(2)
                .map(|w| dist.mass_between(w[0], w[1], horizon))
                .sum();
            assert!((total - 1.0).abs() < 1e-9, "{dist:?}: total {total}");
        }
    }

    #[test]
    fn gaussian_concentrates_at_center() {
        let d = TimeDistribution::gaussian(0.25);
        let center = d.mass_between(4.0, 6.0, 10.0);
        let edge = d.mass_between(0.0, 2.0, 10.0);
        assert!(center > 2.0 * edge, "center {center} vs edge {edge}");
    }

    #[test]
    fn wide_gaussian_approaches_uniform() {
        let wide = TimeDistribution::gaussian(10.0);
        let m = wide.mass_between(0.0, 5.0, 10.0);
        assert!((m - 0.5).abs() < 0.02, "wide gaussian mass {m}");
    }

    #[test]
    fn piecewise_weights_shape_mass() {
        let d = TimeDistribution::piecewise(vec![0.0, 1.0]);
        assert_eq!(d.mass_between(0.0, 5.0, 10.0), 0.0);
        assert!((d.mass_between(5.0, 10.0, 10.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn samples_within_range_and_match_distribution() {
        let mut rng = SmallRng::seed_from_u64(1);
        for dist in [
            TimeDistribution::Uniform,
            TimeDistribution::gaussian(0.5),
            TimeDistribution::piecewise(vec![1.0, 0.0, 2.0]),
        ] {
            let horizon = 12.0;
            let mut below_half = 0;
            let n = 4000;
            for _ in 0..n {
                let t = dist.sample(horizon, &mut rng);
                assert!((0.0..=horizon).contains(&t), "{dist:?} sampled {t}");
                if t < horizon / 2.0 {
                    below_half += 1;
                }
            }
            let empirical = below_half as f64 / n as f64;
            let expected = dist.mass_between(0.0, horizon / 2.0, horizon);
            assert!(
                (empirical - expected).abs() < 0.05,
                "{dist:?}: empirical {empirical} vs expected {expected}"
            );
        }
    }

    #[test]
    fn erf_known_values() {
        assert!(erf(0.0).abs() < 1e-7);
        assert!((erf(1.0) - 0.8427).abs() < 1e-3);
        assert!((erf(-1.0) + 0.8427).abs() < 1e-3);
        assert!((erf(3.0) - 1.0).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "horizon")]
    fn rejects_zero_horizon() {
        TimeDistribution::Uniform.mass_between(0.0, 1.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "all be zero")]
    fn rejects_zero_weights() {
        TimeDistribution::piecewise(vec![0.0, 0.0]);
    }
}
