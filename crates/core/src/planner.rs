//! Exit planners: EINet and every baseline of the evaluation (Section VI-A).

use rand::rngs::SmallRng;
use rand::SeedableRng;

use einet_predictor::CsPredictor;
use einet_profile::EtProfile;

use crate::plan::ExitPlan;
use crate::search::{random_search, SearchEngine};
use crate::time_dist::TimeDistribution;

/// The information available to a planner when it (re)plans: the profile,
/// the assumed kill-time distribution, and the confidences produced so far.
#[derive(Debug, Clone, Copy)]
pub struct PlanContext<'a> {
    /// ET-profile of the model on the current platform.
    pub et: &'a EtProfile,
    /// Assumed kill-time distribution.
    pub dist: &'a TimeDistribution,
    /// Per-exit actual confidence for executed exits, `None` otherwise.
    pub executed: &'a [Option<f32>],
    /// The branches actually executed so far.
    pub history: &'a ExitPlan,
    /// Index of the first exit whose conv part has not completed yet; bits
    /// below this are immutable history.
    pub next_exit: usize,
}

impl PlanContext<'_> {
    /// Number of exits.
    pub fn num_exits(&self) -> usize {
        self.et.num_exits()
    }

    /// The latest executed confidence, if any output exists yet.
    pub fn latest_confidence(&self) -> Option<f32> {
        self.executed[..self.next_exit.min(self.executed.len())]
            .iter()
            .rev()
            .find_map(|c| *c)
    }
}

/// A planner's answer: a (possibly updated) plan, or an instruction to stop
/// inference and commit the current result.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlannerDecision {
    /// Continue with this plan (past bits are ignored/frozen by the
    /// runtime).
    Plan(ExitPlan),
    /// Commit the last output and end inference (confidence-threshold
    /// baselines).
    Stop,
}

/// A sample-wise exit planner. The runtime calls [`Planner::plan`] once
/// before inference and again after every executed branch.
pub trait Planner {
    /// A short display name for reports.
    fn name(&self) -> String;

    /// Produces the plan for the remaining exits (or stops).
    fn plan(&mut self, ctx: &PlanContext<'_>) -> PlannerDecision;

    /// Called before each new sample; stateful planners reset here.
    fn reset(&mut self) {}
}

/// A fixed plan, chosen offline: the paper's *static* baselines (25%, 50%,
/// 100% of branches, and the enumerated offline-optimal plan of Table II).
#[derive(Debug, Clone)]
pub struct StaticPlanner {
    plan: ExitPlan,
    name: String,
}

impl StaticPlanner {
    /// Wraps a fixed plan.
    pub fn new(plan: ExitPlan, name: impl Into<String>) -> Self {
        StaticPlanner {
            plan,
            name: name.into(),
        }
    }

    /// The evenly-spaced static plan executing `percent` of branches.
    pub fn percent(num_exits: usize, percent: f64) -> Self {
        StaticPlanner {
            plan: ExitPlan::static_percent(num_exits, percent),
            name: format!("static-{}%", (percent * 100.0).round() as u32),
        }
    }

    /// The plan this planner always returns.
    pub fn plan_ref(&self) -> &ExitPlan {
        &self.plan
    }
}

impl Planner for StaticPlanner {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn plan(&mut self, _ctx: &PlanContext<'_>) -> PlannerDecision {
        PlannerDecision::Plan(self.plan)
    }
}

/// Executes every branch — the plain multi-exit network without a planner
/// ("ME-NNs" / the 100% static plan).
#[derive(Debug, Clone, Copy, Default)]
pub struct AllExitsPlanner;

impl Planner for AllExitsPlanner {
    fn name(&self) -> String {
        "me-nn-all-exits".to_string()
    }

    fn plan(&mut self, ctx: &PlanContext<'_>) -> PlannerDecision {
        PlannerDecision::Plan(ExitPlan::full(ctx.num_exits()))
    }
}

/// The classic single-exit model: only the final classifier runs, so a kill
/// before completion yields *no result* (Fig. 1's "previous methods").
#[derive(Debug, Clone, Copy, Default)]
pub struct ClassicPlanner;

impl Planner for ClassicPlanner {
    fn name(&self) -> String {
        "classic-single-exit".to_string()
    }

    fn plan(&mut self, ctx: &PlanContext<'_>) -> PlannerDecision {
        PlannerDecision::Plan(ExitPlan::last_only(ctx.num_exits()))
    }
}

/// Confidence-threshold early exit (BranchyNet-style dynamic baseline):
/// execute every branch in depth order and stop as soon as one is confident
/// enough.
#[derive(Debug, Clone, Copy)]
pub struct ConfidenceThresholdPlanner {
    threshold: f32,
}

impl ConfidenceThresholdPlanner {
    /// Creates the planner with an exit threshold in `(0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the threshold is out of range.
    pub fn new(threshold: f32) -> Self {
        assert!(
            threshold > 0.0 && threshold <= 1.0,
            "threshold must be in (0, 1]"
        );
        ConfidenceThresholdPlanner { threshold }
    }

    /// The configured threshold.
    pub fn threshold(&self) -> f32 {
        self.threshold
    }
}

impl Planner for ConfidenceThresholdPlanner {
    fn name(&self) -> String {
        format!("conf-threshold-{:.2}", self.threshold)
    }

    fn plan(&mut self, ctx: &PlanContext<'_>) -> PlannerDecision {
        if ctx.latest_confidence().is_some_and(|c| c >= self.threshold) {
            PlannerDecision::Stop
        } else {
            PlannerDecision::Plan(ExitPlan::full(ctx.num_exits()))
        }
    }
}

/// EINet: CS-Predictor completes the confidence list (Eq. 1), the Search
/// Engine finds a near-optimal plan for the remaining exits, and the plan is
/// refreshed after every output (Section V).
///
/// Before the first output exists there is nothing to feed the CS-Predictor
/// (its training pieces all start from an executed prefix — Fig. 5), so the
/// *initial* plan is searched over the profile's mean per-exit confidences;
/// from the first output onward the sample-specific predictions take over.
#[derive(Debug)]
pub struct EinetPlanner<'a> {
    predictor: &'a CsPredictor,
    prior: Vec<f32>,
    engine: SearchEngine,
}

impl<'a> EinetPlanner<'a> {
    /// Creates the planner from a trained predictor, the profile's mean
    /// confidence per exit (e.g. `CsProfile::exit_mean_confidence`), and a
    /// search engine.
    ///
    /// # Panics
    ///
    /// Panics if `prior.len()` differs from the predictor width.
    pub fn new(predictor: &'a CsPredictor, prior: Vec<f32>, engine: SearchEngine) -> Self {
        assert_eq!(
            prior.len(),
            predictor.num_exits(),
            "prior/predictor width mismatch"
        );
        EinetPlanner {
            predictor,
            prior,
            engine,
        }
    }

    /// The search engine in use.
    pub fn engine(&self) -> SearchEngine {
        self.engine
    }
}

impl Planner for EinetPlanner<'_> {
    fn name(&self) -> String {
        format!("einet-hybrid-m{}", self.engine.enum_outputs())
    }

    fn plan(&mut self, ctx: &PlanContext<'_>) -> PlannerDecision {
        let no_output_yet = ctx.executed.iter().all(|c| c.is_none());
        let confidences = if no_output_yet {
            let _s = einet_trace::span(einet_trace::Category::Predictor, "prior");
            self.prior.clone()
        } else {
            let _s = einet_trace::span(einet_trace::Category::Predictor, "predict_masked");
            self.predictor.predict_masked(ctx.executed)
        };
        let (plan, _) = self.engine.search(
            ctx.et,
            ctx.dist,
            &confidences,
            ctx.next_exit,
            Some(ctx.history),
        );
        PlannerDecision::Plan(plan)
    }
}

/// Ablation planner: the Search Engine runs on the profile's *mean* exit
/// confidences for every sample and every replanning round — i.e. EINet with
/// the CS-Predictor removed. The gap between this and [`EinetPlanner`]
/// isolates the value of sample-wise confidence prediction.
#[derive(Debug, Clone)]
pub struct ProfilePriorPlanner {
    prior: Vec<f32>,
    engine: SearchEngine,
}

impl ProfilePriorPlanner {
    /// Creates the planner from mean per-exit confidences.
    ///
    /// # Panics
    ///
    /// Panics if `prior` is empty.
    pub fn new(prior: Vec<f32>, engine: SearchEngine) -> Self {
        assert!(!prior.is_empty(), "prior must not be empty");
        ProfilePriorPlanner { prior, engine }
    }
}

impl Planner for ProfilePriorPlanner {
    fn name(&self) -> String {
        format!("prior-only-m{}", self.engine.enum_outputs())
    }

    fn plan(&mut self, ctx: &PlanContext<'_>) -> PlannerDecision {
        // Known actual confidences still replace the prior for past exits —
        // only the *future* is unpersonalised.
        let confidences: Vec<f32> = self
            .prior
            .iter()
            .zip(ctx.executed.iter())
            .map(|(&p, e)| e.unwrap_or(p))
            .collect();
        let (plan, _) = self.engine.search(
            ctx.et,
            ctx.dist,
            &confidences,
            ctx.next_exit,
            Some(ctx.history),
        );
        PlannerDecision::Plan(plan)
    }
}

/// EINet with the Search Engine replaced by random plan sampling — the
/// "EINet with random search" dynamic baseline of Fig. 9/13.
#[derive(Debug)]
pub struct RandomSearchPlanner<'a> {
    predictor: &'a CsPredictor,
    prior: Vec<f32>,
    tries: usize,
    seed: u64,
    rng: SmallRng,
}

impl<'a> RandomSearchPlanner<'a> {
    /// Creates the planner; `tries` random plans are scored per planning
    /// round (the paper samples 10,000). `prior` plays the same role as in
    /// [`EinetPlanner::new`].
    ///
    /// # Panics
    ///
    /// Panics if `tries` is zero or `prior` width mismatches.
    pub fn new(predictor: &'a CsPredictor, prior: Vec<f32>, tries: usize, seed: u64) -> Self {
        assert!(tries > 0, "need at least one random try");
        assert_eq!(
            prior.len(),
            predictor.num_exits(),
            "prior/predictor width mismatch"
        );
        RandomSearchPlanner {
            predictor,
            prior,
            tries,
            seed,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl Planner for RandomSearchPlanner<'_> {
    fn name(&self) -> String {
        format!("einet-random-{}", self.tries)
    }

    fn plan(&mut self, ctx: &PlanContext<'_>) -> PlannerDecision {
        let confidences = if ctx.executed.iter().all(|c| c.is_none()) {
            self.prior.clone()
        } else {
            self.predictor.predict_masked(ctx.executed)
        };
        let n = ctx.num_exits();
        let mut base = ExitPlan::empty(n);
        for i in 0..ctx.next_exit {
            base.set(i, ctx.history.get(i));
        }
        let free: Vec<usize> = (ctx.next_exit..n).collect();
        let eval =
            |p: &ExitPlan| crate::expectation::expectation(ctx.et, ctx.dist, p, &confidences);
        let (plan, _) = random_search(&base, &free, self.tries, &eval, &mut self.rng);
        PlannerDecision::Plan(plan)
    }

    fn reset(&mut self) {
        self.rng = SmallRng::seed_from_u64(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx_fixture<'a>(
        et: &'a EtProfile,
        dist: &'a TimeDistribution,
        executed: &'a [Option<f32>],
        history: &'a ExitPlan,
        next_exit: usize,
    ) -> PlanContext<'a> {
        PlanContext {
            et,
            dist,
            executed,
            history,
            next_exit,
        }
    }

    fn et4() -> EtProfile {
        EtProfile::new(vec![1.0; 4], vec![0.5; 4]).unwrap()
    }

    #[test]
    fn static_planner_is_constant() {
        let et = et4();
        let dist = TimeDistribution::Uniform;
        let executed = [None; 4];
        let history = ExitPlan::empty(4);
        let mut p = StaticPlanner::percent(4, 0.5);
        let ctx = ctx_fixture(&et, &dist, &executed, &history, 0);
        let d1 = p.plan(&ctx);
        let d2 = p.plan(&ctx);
        assert_eq!(d1, d2);
        assert!(p.name().contains("50"));
    }

    #[test]
    fn classic_plans_last_only() {
        let et = et4();
        let dist = TimeDistribution::Uniform;
        let executed = [None; 4];
        let history = ExitPlan::empty(4);
        let mut p = ClassicPlanner;
        match p.plan(&ctx_fixture(&et, &dist, &executed, &history, 0)) {
            PlannerDecision::Plan(plan) => {
                assert_eq!(plan.count_executed(), 1);
                assert!(plan.get(3));
            }
            PlannerDecision::Stop => panic!("classic never stops"),
        }
    }

    #[test]
    fn threshold_planner_stops_when_confident() {
        let et = et4();
        let dist = TimeDistribution::Uniform;
        let history = ExitPlan::from_indices(4, &[0]);
        let mut p = ConfidenceThresholdPlanner::new(0.8);
        let low = [Some(0.5_f32), None, None, None];
        match p.plan(&ctx_fixture(&et, &dist, &low, &history, 1)) {
            PlannerDecision::Plan(plan) => assert_eq!(plan, ExitPlan::full(4)),
            PlannerDecision::Stop => panic!("should continue below threshold"),
        }
        let high = [Some(0.9_f32), None, None, None];
        assert_eq!(
            p.plan(&ctx_fixture(&et, &dist, &high, &history, 1)),
            PlannerDecision::Stop
        );
    }

    #[test]
    fn einet_planner_returns_valid_plan() {
        let et = et4();
        let dist = TimeDistribution::Uniform;
        let predictor = CsPredictor::new(4, 16, 3);
        let mut planner = EinetPlanner::new(&predictor, vec![0.5; 4], SearchEngine::default());
        let executed = [Some(0.5_f32), None, None, None];
        let history = ExitPlan::from_indices(4, &[0]);
        match planner.plan(&ctx_fixture(&et, &dist, &executed, &history, 1)) {
            PlannerDecision::Plan(plan) => {
                assert_eq!(plan.len(), 4);
            }
            PlannerDecision::Stop => panic!("einet never stops voluntarily"),
        }
    }

    #[test]
    fn random_planner_is_deterministic_after_reset() {
        let et = et4();
        let dist = TimeDistribution::Uniform;
        let predictor = CsPredictor::new(4, 16, 3);
        let mut planner = RandomSearchPlanner::new(&predictor, vec![0.5; 4], 20, 7);
        let executed = [None; 4];
        let history = ExitPlan::empty(4);
        let ctx = ctx_fixture(&et, &dist, &executed, &history, 0);
        let d1 = planner.plan(&ctx);
        planner.reset();
        let d2 = planner.plan(&ctx);
        assert_eq!(d1, d2);
    }

    #[test]
    fn latest_confidence_finds_most_recent() {
        let et = et4();
        let dist = TimeDistribution::Uniform;
        let executed = [Some(0.3_f32), None, Some(0.7), None];
        let history = ExitPlan::from_indices(4, &[0, 2]);
        let ctx = ctx_fixture(&et, &dist, &executed, &history, 3);
        assert_eq!(ctx.latest_confidence(), Some(0.7));
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn threshold_rejects_zero() {
        ConfidenceThresholdPlanner::new(0.0);
    }
}
