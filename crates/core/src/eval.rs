//! Overall-accuracy evaluation harnesses (Section VI methodology).
//!
//! The paper's metric: draw a random kill time per sample, run elastic
//! inference, score the last output (no output = incorrect), and average
//! over many samples and trials to wash out the randomness.

use rand::rngs::SmallRng;
use rand::SeedableRng;

use einet_profile::{CsProfile, EtProfile};

use crate::expectation::expectation;
use crate::plan::ExitPlan;
use crate::planner::Planner;
use crate::runtime::{ElasticRuntime, SampleTable};
use crate::time_dist::TimeDistribution;

/// Evaluation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EvalConfig {
    /// Independent kill-time draws per sample.
    pub trials: usize,
    /// RNG seed for the kill times.
    pub seed: u64,
}

impl Default for EvalConfig {
    fn default() -> Self {
        EvalConfig { trials: 5, seed: 0 }
    }
}

/// Converts a whole CS-profile into per-sample simulation tables.
pub fn tables_from_profile(profile: &CsProfile) -> Vec<SampleTable> {
    (0..profile.len())
        .map(|i| SampleTable::from_profile(profile, i))
        .collect()
}

/// Overall accuracy of `planner` over `tables` with random kill times.
///
/// # Panics
///
/// Panics if `tables` is empty or `cfg.trials` is zero.
pub fn overall_accuracy(
    et: &EtProfile,
    dist: &TimeDistribution,
    tables: &[SampleTable],
    planner: &mut dyn Planner,
    cfg: &EvalConfig,
) -> f64 {
    assert!(!tables.is_empty(), "no samples to evaluate");
    assert!(cfg.trials > 0, "need at least one trial");
    let runtime = ElasticRuntime::new(et, dist);
    let horizon = runtime.horizon_ms();
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let mut correct = 0usize;
    for table in tables {
        for _ in 0..cfg.trials {
            let kill = dist.sample(horizon, &mut rng);
            if runtime.run_sample(table, planner, kill).correct {
                correct += 1;
            }
        }
    }
    correct as f64 / (tables.len() * cfg.trials) as f64
}

/// Ground-truth overall accuracy of a *fixed* plan (used by Fig. 11 to
/// validate the expectation metric).
pub fn plan_ground_truth(
    et: &EtProfile,
    dist: &TimeDistribution,
    tables: &[SampleTable],
    plan: &ExitPlan,
    cfg: &EvalConfig,
) -> f64 {
    let mut planner = crate::planner::StaticPlanner::new(*plan, "ground-truth");
    overall_accuracy(et, dist, tables, &mut planner, cfg)
}

/// The *calculated expectation* of a fixed plan averaged over samples, using
/// each sample's actual confidence list — the metric Fig. 11 compares
/// against ground truth.
///
/// # Panics
///
/// Panics if `tables` is empty.
pub fn plan_expected(
    et: &EtProfile,
    dist: &TimeDistribution,
    tables: &[SampleTable],
    plan: &ExitPlan,
) -> f64 {
    assert!(!tables.is_empty(), "no samples to evaluate");
    let sum: f64 = tables
        .iter()
        .map(|t| expectation(et, dist, plan, &t.confidences))
        .sum();
    sum / tables.len() as f64
}

/// Like [`plan_expected`], but with per-exit calibration factors applied to
/// every confidence (`c'ᵢ = cᵢ · calibration[i]`), mapping over-confident
/// scores onto the accuracy scale before the expectation is computed.
///
/// # Panics
///
/// Panics if `tables` is empty or the calibration width mismatches.
pub fn plan_expected_calibrated(
    et: &EtProfile,
    dist: &TimeDistribution,
    tables: &[SampleTable],
    plan: &ExitPlan,
    calibration: &[f32],
) -> f64 {
    assert!(!tables.is_empty(), "no samples to evaluate");
    assert_eq!(
        calibration.len(),
        et.num_exits(),
        "calibration width mismatch"
    );
    let sum: f64 = tables
        .iter()
        .map(|t| {
            let scaled: Vec<f32> = t
                .confidences
                .iter()
                .zip(calibration)
                .map(|(&c, &k)| (c * k).clamp(0.0, 1.0))
                .collect();
            expectation(et, dist, plan, &scaled)
        })
        .sum();
    sum / tables.len() as f64
}

/// Derives the profile of a *compressed* single-exit model from the base
/// model's profile: the timeline shrinks by `time_factor` (compression makes
/// inference faster) while only the final exit exists.
///
/// # Panics
///
/// Panics unless `0 < time_factor <= 1`.
pub fn compressed_profile(et: &EtProfile, time_factor: f64) -> EtProfile {
    assert!(
        time_factor > 0.0 && time_factor <= 1.0,
        "time factor must be in (0, 1]"
    );
    let conv: Vec<f64> = et.conv_ms().iter().map(|t| t * time_factor).collect();
    let branch: Vec<f64> = et.branch_ms().iter().map(|t| t * time_factor).collect();
    EtProfile::new(conv, branch).expect("scaled profile stays valid")
}

/// Degrades the final-exit predictions of a `fraction` of samples to model
/// the accuracy loss of model compression (Section VI-B3's compressed
/// baseline). Deterministic given the seed.
///
/// # Panics
///
/// Panics unless `0 <= fraction <= 1`.
pub fn degrade_final_exit(tables: &mut [SampleTable], fraction: f64, seed: u64) {
    assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0,1]");
    use rand::Rng;
    let mut rng = SmallRng::seed_from_u64(seed);
    for table in tables.iter_mut() {
        if rng.gen_bool(fraction) {
            let last = table.predictions.len() - 1;
            // Force an incorrect final answer.
            table.predictions[last] = table.label.wrapping_add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{AllExitsPlanner, ClassicPlanner, StaticPlanner};

    fn fixture() -> (EtProfile, TimeDistribution, Vec<SampleTable>) {
        let et = EtProfile::new(vec![1.0; 5], vec![0.5; 5]).unwrap();
        let dist = TimeDistribution::Uniform;
        // 20 samples: exits get progressively more accurate.
        let tables: Vec<SampleTable> = (0..20)
            .map(|s| {
                let label = (s % 4) as u16;
                let predictions: Vec<u16> = (0..5)
                    .map(|e| {
                        // Exit e correct for samples with s % 5 <= e.
                        if s % 5 <= e {
                            label
                        } else {
                            label + 1
                        }
                    })
                    .collect();
                let confidences: Vec<f32> = (0..5).map(|e| 0.3 + 0.15 * e as f32).collect();
                SampleTable {
                    confidences,
                    predictions,
                    label,
                }
            })
            .collect();
        (et, dist, tables)
    }

    #[test]
    fn accuracy_in_unit_range_and_deterministic() {
        let (et, dist, tables) = fixture();
        let cfg = EvalConfig { trials: 3, seed: 9 };
        let mut p = AllExitsPlanner;
        let a1 = overall_accuracy(&et, &dist, &tables, &mut p, &cfg);
        let a2 = overall_accuracy(&et, &dist, &tables, &mut p, &cfg);
        assert!((0.0..=1.0).contains(&a1));
        assert_eq!(a1, a2, "same seed must reproduce");
    }

    #[test]
    fn multi_exit_beats_classic_under_preemption() {
        let (et, dist, tables) = fixture();
        let cfg = EvalConfig {
            trials: 10,
            seed: 1,
        };
        let mut all = AllExitsPlanner;
        let mut classic = ClassicPlanner;
        let acc_all = overall_accuracy(&et, &dist, &tables, &mut all, &cfg);
        let acc_classic = overall_accuracy(&et, &dist, &tables, &mut classic, &cfg);
        assert!(
            acc_all > acc_classic,
            "elastic inference must beat single-exit: {acc_all} vs {acc_classic}"
        );
    }

    #[test]
    fn expectation_tracks_ground_truth_direction() {
        let (et, dist, tables) = fixture();
        let cfg = EvalConfig {
            trials: 40,
            seed: 3,
        };
        let full = ExitPlan::full(5);
        let sparse = ExitPlan::from_indices(5, &[4]);
        let gt_full = plan_ground_truth(&et, &dist, &tables, &full, &cfg);
        let gt_sparse = plan_ground_truth(&et, &dist, &tables, &sparse, &cfg);
        let ex_full = plan_expected(&et, &dist, &tables, &full);
        let ex_sparse = plan_expected(&et, &dist, &tables, &sparse);
        // Both metrics should order the two plans the same way.
        assert_eq!(gt_full > gt_sparse, ex_full > ex_sparse);
    }

    #[test]
    fn compressed_profile_shrinks_time() {
        let (et, _, _) = fixture();
        let fast = compressed_profile(&et, 0.5);
        assert!((fast.total_ms() - et.total_ms() * 0.5).abs() < 1e-9);
    }

    #[test]
    fn degrade_final_exit_lowers_last_exit_accuracy() {
        let (_, _, mut tables) = fixture();
        let before: usize = tables
            .iter()
            .filter(|t| t.predictions[4] == t.label)
            .count();
        degrade_final_exit(&mut tables, 1.0, 5);
        let after: usize = tables
            .iter()
            .filter(|t| t.predictions[4] == t.label)
            .count();
        assert_eq!(after, 0);
        assert!(before > 0);
    }

    #[test]
    fn static_planner_matches_ground_truth_helper() {
        let (et, dist, tables) = fixture();
        let cfg = EvalConfig { trials: 4, seed: 2 };
        let plan = ExitPlan::static_percent(5, 0.5);
        let via_helper = plan_ground_truth(&et, &dist, &tables, &plan, &cfg);
        let mut planner = StaticPlanner::new(plan, "x");
        let direct = overall_accuracy(&et, &dist, &tables, &mut planner, &cfg);
        assert_eq!(via_helper, direct);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn rejects_empty_tables() {
        let (et, dist, _) = fixture();
        let mut p = AllExitsPlanner;
        overall_accuracy(&et, &dist, &[], &mut p, &EvalConfig::default());
    }
}
