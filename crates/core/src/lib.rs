//! # einet-core
//!
//! The primary contribution of the EINet paper: a **sample-wise planner for
//! elastic DNN inference with unpredictable exit**.
//!
//! A real-time inference task may be killed at any moment (power outage, 5G
//! vRAN preemption, user abort). EINet keeps a best-effort result ready at
//! all times by deciding, per sample and continuously, *which exit branches
//! of a multi-exit network to execute and which to skip*:
//!
//! * [`ExitPlan`] — a bitset over exits: bit `i` set ⇒ execute branch `i`.
//! * [`TimeDistribution`] — the assumed distribution of the kill time
//!   (uniform, truncated Gaussian, or arbitrary piecewise density —
//!   Section V-A and Fig. 7).
//! * [`AccuracyExpectation`] — Algorithm 1: scores a plan by the expected
//!   confidence of the result held when the kill occurs.
//! * [`SearchEngine`] — Algorithm 2: hybrid enumeration + greedy search for
//!   a near-optimal plan; plus [`search`] building blocks (pure enumeration,
//!   greedy, random) used as baselines.
//! * [`Planner`] implementations — EINet itself ([`EinetPlanner`]) and every
//!   baseline of Section VI: static percentage plans, the offline-optimal
//!   static plan, confidence-threshold early exit, random-search EINet,
//!   classic single-exit, compressed single-exit, and the no-skip multi-exit
//!   network.
//! * [`ElasticRuntime`] — the simulated-clock executor that plays inference
//!   timelines against random kill times and scores outcomes
//!   ([`ElasticOutcome`]).
//! * [`eval`] — overall-accuracy evaluation harnesses used by every
//!   experiment binary.
//! * [`BatchGainModel`] — the online service-time/arrival cost model behind
//!   the serving layer's adaptive batch coalescing (`einet-edge`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batching;
mod expectation;
mod plan;
mod planner;
mod runtime;
mod time_dist;

pub mod eval;
pub mod search;

pub use batching::{BatchGainModel, MAX_TRACKED_BATCH};
pub use expectation::{expectation, expectation_reference, AccuracyExpectation};
pub use plan::ExitPlan;
pub use planner::{
    AllExitsPlanner, ClassicPlanner, ConfidenceThresholdPlanner, EinetPlanner, PlanContext,
    Planner, PlannerDecision, ProfilePriorPlanner, RandomSearchPlanner, StaticPlanner,
};
pub use runtime::{ElasticOutcome, ElasticRuntime, SampleTable};
pub use search::{CacheStats, ExpectationCache, SearchEngine};
pub use time_dist::TimeDistribution;
