//! The accuracy-expectation algorithm (Algorithm 1, Eq. 5).

use einet_profile::EtProfile;

use crate::plan::ExitPlan;
use crate::time_dist::TimeDistribution;

/// Scores exit plans by the expected quality of the result held at the
/// (random) kill time.
///
/// The inference timeline of a plan alternates conv parts (always run) and
/// executed branches; between two outputs the task holds the older result,
/// whose confidence stands in for its accuracy. The expectation is
///
/// ```text
/// E = Σᵢ Cᵢ · P(kill ∈ intervalᵢ)
/// ```
///
/// with `C = 0` before the first output (a kill then yields *no result*) and
/// the final output's confidence covering the remainder of the horizon. The
/// horizon `T` is the full-plan execution time, matching the evaluation's
/// kill-time draw.
///
/// # Example
///
/// ```
/// use einet_core::{AccuracyExpectation, ExitPlan, TimeDistribution};
/// use einet_profile::EtProfile;
///
/// let et = EtProfile::new(vec![1.0, 1.0], vec![1.0, 1.0])?;
/// let dist = TimeDistribution::Uniform;
/// let scorer = AccuracyExpectation::new(&et, &dist);
/// let e = scorer.evaluate(&ExitPlan::full(2), &[0.5, 1.0]);
/// // Output 0 at t=2 covers [2,3); output 1 at t=4 covers nothing further.
/// assert!((e - (0.5 * 0.5 + 0.0)).abs() < 1e-9);
/// # Ok::<(), einet_profile::ProfileIoError>(())
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AccuracyExpectation<'a> {
    et: &'a EtProfile,
    dist: &'a TimeDistribution,
}

impl<'a> AccuracyExpectation<'a> {
    /// Creates a scorer over a profile and kill-time distribution.
    pub fn new(et: &'a EtProfile, dist: &'a TimeDistribution) -> Self {
        AccuracyExpectation { et, dist }
    }

    /// Evaluates a plan given the (actual or predicted) confidence at every
    /// exit.
    ///
    /// # Panics
    ///
    /// Panics if `confidences.len()` differs from the profile's exit count
    /// or the plan length mismatches.
    pub fn evaluate(&self, plan: &ExitPlan, confidences: &[f32]) -> f64 {
        expectation(self.et, self.dist, plan, confidences)
    }

    /// The profile this scorer reads.
    pub fn profile(&self) -> &EtProfile {
        self.et
    }

    /// The kill-time distribution this scorer assumes.
    pub fn distribution(&self) -> &TimeDistribution {
        self.dist
    }
}

/// The left-to-right scan state of the expectation kernel after consuming a
/// prefix of the exits. The state after exit `d` depends only on the plan
/// bits `< d`, which is what makes prefix states shareable across plans
/// (see `search::ExpectationCache`).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub(crate) struct ScanState {
    /// Elapsed execution time.
    t: f64,
    /// Time of the latest output.
    t_last: f64,
    /// Confidence of the latest output (0 = none yet).
    c_last: f64,
    /// Expectation mass accumulated over closed intervals.
    e: f64,
}

impl ScanState {
    /// The state before any exit has been consumed.
    pub(crate) const START: ScanState = ScanState {
        t: 0.0,
        t_last: 0.0,
        c_last: 0.0,
        e: 0.0,
    };
}

/// Advances a scan state over exits `from..to`. Running this in pieces
/// replays exactly the op sequence of a whole-plan scan, so resumed
/// evaluations are bit-identical to fresh ones.
pub(crate) fn scan_exits(
    et: &EtProfile,
    dist: &TimeDistribution,
    plan: &ExitPlan,
    confidences: &[f32],
    mut s: ScanState,
    from: usize,
    to: usize,
) -> ScanState {
    let horizon = et.total_ms();
    let conv = et.conv_ms();
    let branch = et.branch_ms();
    for i in from..to {
        s.t += conv[i];
        if plan.get(i) {
            s.t += branch[i];
            if s.c_last > 0.0 {
                s.e += s.c_last * dist.mass_between(s.t_last, s.t, horizon);
            }
            s.c_last = f64::from(confidences[i]);
            s.t_last = s.t;
        }
    }
    s
}

/// Closes a fully-scanned state: the last output covers the remaining
/// horizon.
pub(crate) fn scan_close(et: &EtProfile, dist: &TimeDistribution, s: ScanState) -> f64 {
    let horizon = et.total_ms();
    if s.c_last > 0.0 {
        s.e + s.c_last * dist.mass_between(s.t_last, horizon, horizon)
    } else {
        s.e
    }
}

/// The optimized accuracy-expectation kernel: one pass over the exits, no
/// allocation. This is the "C implementation" of Table I.
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn expectation(
    et: &EtProfile,
    dist: &TimeDistribution,
    plan: &ExitPlan,
    confidences: &[f32],
) -> f64 {
    let n = et.num_exits();
    assert_eq!(plan.len(), n, "plan/profile length mismatch");
    assert_eq!(confidences.len(), n, "confidence/profile length mismatch");
    let s = scan_exits(et, dist, plan, confidences, ScanState::START, 0, n);
    scan_close(et, dist, s)
}

/// A deliberately naive reference implementation of Algorithm 1 that builds
/// the full interval list with heap allocations and per-interval closures —
/// the "Python implementation" of Table I. Semantically identical to
/// [`expectation`]; used to reproduce the naive-vs-optimized gap and as a
/// differential-testing oracle.
///
/// # Panics
///
/// Panics if lengths disagree.
pub fn expectation_reference(
    et: &EtProfile,
    dist: &TimeDistribution,
    plan: &ExitPlan,
    confidences: &[f32],
) -> f64 {
    #[derive(Debug, Clone)]
    struct Interval {
        start: f64,
        end: f64,
        confidence: f64,
    }
    let n = et.num_exits();
    assert_eq!(plan.len(), n, "plan/profile length mismatch");
    assert_eq!(confidences.len(), n, "confidence/profile length mismatch");
    let horizon = et.total_ms();
    // Build the event timeline as owned vectors (naively).
    let mut events: Vec<(f64, f64)> = Vec::new(); // (output time, confidence)
    let mut t = 0.0;
    for (i, &conf) in confidences.iter().enumerate() {
        t += et.conv_ms()[i];
        if plan.to_bools()[i] {
            t += et.branch_ms()[i];
            events.push((t, f64::from(conf)));
        }
    }
    let mut intervals: Vec<Interval> = Vec::new();
    let mut t_last = 0.0;
    let mut c_last = 0.0;
    for (time, conf) in events {
        intervals.push(Interval {
            start: t_last,
            end: time,
            confidence: c_last,
        });
        t_last = time;
        c_last = conf;
    }
    intervals.push(Interval {
        start: t_last,
        end: horizon,
        confidence: c_last,
    });
    intervals
        .iter()
        .map(|iv| {
            let weight: Box<dyn Fn() -> f64> =
                Box::new(|| dist.mass_between(iv.start, iv.end, horizon));
            iv.confidence * weight()
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn et3() -> EtProfile {
        EtProfile::new(vec![1.0, 1.0, 1.0], vec![0.5, 0.5, 0.5]).unwrap()
    }

    #[test]
    fn empty_plan_scores_zero() {
        let et = et3();
        let dist = TimeDistribution::Uniform;
        let e = expectation(&et, &dist, &ExitPlan::empty(3), &[0.9, 0.9, 0.9]);
        assert_eq!(e, 0.0);
    }

    #[test]
    fn closed_form_single_exit() {
        // conv=1,1,1 branch=.5,.5,.5 => horizon=4.5.
        // Plan executes only exit 0: output at t=1.5 with confidence 0.8,
        // held until 4.5 => E = 0.8 * 3/4.5.
        let et = et3();
        let dist = TimeDistribution::Uniform;
        let plan = ExitPlan::from_indices(3, &[0]);
        let e = expectation(&et, &dist, &plan, &[0.8, 0.0, 0.0]);
        assert!((e - 0.8 * (3.0 / 4.5)).abs() < 1e-7);
    }

    #[test]
    fn deeper_single_exit_covers_less_mass() {
        let et = et3();
        let dist = TimeDistribution::Uniform;
        let shallow = expectation(&et, &dist, &ExitPlan::from_indices(3, &[0]), &[0.8; 3]);
        let deep = expectation(&et, &dist, &ExitPlan::from_indices(3, &[2]), &[0.8; 3]);
        assert!(shallow > deep);
    }

    #[test]
    fn higher_confidence_scores_higher() {
        let et = et3();
        let dist = TimeDistribution::Uniform;
        let plan = ExitPlan::full(3);
        let low = expectation(&et, &dist, &plan, &[0.2, 0.3, 0.4]);
        let high = expectation(&et, &dist, &plan, &[0.6, 0.7, 0.8]);
        assert!(high > low);
    }

    #[test]
    fn expectation_bounded_by_max_confidence() {
        let et = et3();
        let dist = TimeDistribution::Uniform;
        let plan = ExitPlan::full(3);
        let confs = [0.3_f32, 0.9, 0.7];
        let e = expectation(&et, &dist, &plan, &confs);
        assert!(e <= 0.9 + 1e-12);
        assert!(e >= 0.0);
    }

    #[test]
    fn reference_matches_optimized() {
        let et = EtProfile::new(
            vec![0.8, 1.3, 0.4, 2.0, 0.9],
            vec![0.2, 0.3, 0.1, 0.5, 0.25],
        )
        .unwrap();
        let confs = [0.31_f32, 0.52, 0.48, 0.77, 0.93];
        for dist in [
            TimeDistribution::Uniform,
            TimeDistribution::gaussian(0.5),
            TimeDistribution::piecewise(vec![1.0, 4.0, 2.0]),
        ] {
            for bits in 0..32_u64 {
                let mut plan = ExitPlan::empty(5);
                for i in 0..5 {
                    plan.set(i, (bits >> i) & 1 == 1);
                }
                let fast = expectation(&et, &dist, &plan, &confs);
                let slow = expectation_reference(&et, &dist, &plan, &confs);
                assert!(
                    (fast - slow).abs() < 1e-9,
                    "plan {plan} dist {dist:?}: {fast} vs {slow}"
                );
            }
        }
    }

    #[test]
    fn skipping_a_weak_branch_can_win() {
        // A slow, low-confidence middle branch: skipping it lets the strong
        // final output arrive sooner — the core insight of the paper
        // (executing all branches is not always optimal).
        let et = EtProfile::new(vec![1.0, 1.0, 1.0], vec![0.2, 5.0, 0.2]).unwrap();
        let dist = TimeDistribution::Uniform;
        let confs = [0.5_f32, 0.52, 0.95];
        let all = expectation(&et, &dist, &ExitPlan::full(3), &confs);
        let skip_mid = expectation(&et, &dist, &ExitPlan::from_indices(3, &[0, 2]), &confs);
        assert!(
            skip_mid > all,
            "skipping should win: skip={skip_mid} all={all}"
        );
    }

    #[test]
    fn scorer_wrapper_delegates() {
        let et = et3();
        let dist = TimeDistribution::Uniform;
        let scorer = AccuracyExpectation::new(&et, &dist);
        let plan = ExitPlan::full(3);
        let confs = [0.4_f32, 0.6, 0.8];
        assert_eq!(
            scorer.evaluate(&plan, &confs),
            expectation(&et, &dist, &plan, &confs)
        );
    }
}
