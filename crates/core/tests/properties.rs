//! Property-based tests for the planner core: expectation, search, plans,
//! and time distributions.

use einet_core::search::{enumerate_best, greedy_augment, hybrid_search, random_search};
use einet_core::{expectation, expectation_reference, ExitPlan, TimeDistribution};
use einet_profile::EtProfile;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const N: usize = 6;

fn arb_profile() -> impl Strategy<Value = EtProfile> {
    (
        proptest::collection::vec(0.1_f64..3.0, N),
        proptest::collection::vec(0.05_f64..1.0, N),
    )
        .prop_map(|(c, b)| EtProfile::new(c, b).expect("strategy emits valid times"))
}

fn arb_confs() -> impl Strategy<Value = Vec<f32>> {
    proptest::collection::vec(0.01_f32..1.0, N)
}

fn arb_plan() -> impl Strategy<Value = ExitPlan> {
    (0u64..(1 << N)).prop_map(|bits| {
        let mut p = ExitPlan::empty(N);
        for i in 0..N {
            p.set(i, (bits >> i) & 1 == 1);
        }
        p
    })
}

fn arb_dist() -> impl Strategy<Value = TimeDistribution> {
    prop_oneof![
        Just(TimeDistribution::Uniform),
        (0.2_f64..2.0).prop_map(TimeDistribution::gaussian),
        proptest::collection::vec(0.0_f64..5.0, 1..6).prop_filter_map("nonzero", |w| {
            if w.iter().sum::<f64>() > 0.0 {
                Some(TimeDistribution::piecewise(w))
            } else {
                None
            }
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The optimized expectation kernel and the naive reference always agree.
    #[test]
    fn expectation_matches_reference(et in arb_profile(), confs in arb_confs(),
                                     plan in arb_plan(), dist in arb_dist()) {
        let fast = expectation(&et, &dist, &plan, &confs);
        let slow = expectation_reference(&et, &dist, &plan, &confs);
        prop_assert!((fast - slow).abs() < 1e-9, "{fast} vs {slow}");
    }

    /// Expectation is bounded by [0, max confidence].
    #[test]
    fn expectation_bounds(et in arb_profile(), confs in arb_confs(),
                          plan in arb_plan(), dist in arb_dist()) {
        let e = expectation(&et, &dist, &plan, &confs);
        let max_c = confs.iter().cloned().fold(0.0_f32, f32::max) as f64;
        prop_assert!(e >= -1e-12);
        prop_assert!(e <= max_c + 1e-9);
    }

    /// Expectation is monotone in confidences: raising every confidence
    /// cannot lower the expectation.
    #[test]
    fn expectation_monotone_in_confidence(et in arb_profile(), confs in arb_confs(),
                                          plan in arb_plan()) {
        let dist = TimeDistribution::Uniform;
        let raised: Vec<f32> = confs.iter().map(|c| (c + 0.1).min(1.0)).collect();
        let lo = expectation(&et, &dist, &plan, &confs);
        let hi = expectation(&et, &dist, &plan, &raised);
        prop_assert!(hi >= lo - 1e-9);
    }

    /// Hybrid search with a full enumeration budget equals brute force.
    #[test]
    fn full_budget_hybrid_is_optimal(et in arb_profile(), confs in arb_confs(), dist in arb_dist()) {
        let free: Vec<usize> = (0..N).collect();
        let eval = |p: &ExitPlan| expectation(&et, &dist, p, &confs);
        let (_, found) = hybrid_search(&ExitPlan::empty(N), &free, N, &eval);
        let mut best = f64::NEG_INFINITY;
        for bits in 0..(1u64 << N) {
            let mut p = ExitPlan::empty(N);
            for i in 0..N {
                p.set(i, (bits >> i) & 1 == 1);
            }
            best = best.max(eval(&p));
        }
        prop_assert!((found - best).abs() < 1e-9, "hybrid {found} vs brute {best}");
    }

    /// Every searcher improves on (or matches) its starting point, and the
    /// brute-force optimum bounds them all. (Hybrid and pure greedy follow
    /// different trajectories, so neither dominates the other point-wise —
    /// Fig. 12/13 compare them statistically.)
    #[test]
    fn search_dominance(et in arb_profile(), confs in arb_confs(), dist in arb_dist(),
                        m in 0usize..=N) {
        let free: Vec<usize> = (0..N).collect();
        let eval = |p: &ExitPlan| expectation(&et, &dist, p, &confs);
        let empty = ExitPlan::empty(N);
        let empty_score = eval(&empty);
        let (_, greedy) = greedy_augment(&empty, empty_score, &free, &eval);
        let (_, hybrid) = hybrid_search(&empty, &free, m, &eval);
        let (_, best) = hybrid_search(&empty, &free, N, &eval); // exhaustive
        prop_assert!(greedy >= empty_score - 1e-12);
        prop_assert!(hybrid >= empty_score - 1e-12);
        prop_assert!(greedy <= best + 1e-9);
        prop_assert!(hybrid <= best + 1e-9);
    }

    /// Enumeration with a larger budget never finds a worse plan.
    #[test]
    fn enumeration_budget_monotone(et in arb_profile(), confs in arb_confs()) {
        let dist = TimeDistribution::Uniform;
        let free: Vec<usize> = (0..N).collect();
        let eval = |p: &ExitPlan| expectation(&et, &dist, p, &confs);
        let mut last = f64::NEG_INFINITY;
        for m in 0..=N {
            let (_, score) = enumerate_best(&ExitPlan::empty(N), &free, m, &eval);
            prop_assert!(score >= last - 1e-12);
            last = score;
        }
    }

    /// Random search result is bounded by the true optimum and at least the
    /// base score.
    #[test]
    fn random_search_bounds(et in arb_profile(), confs in arb_confs(), seed in 0u64..1000) {
        let dist = TimeDistribution::Uniform;
        let free: Vec<usize> = (0..N).collect();
        let eval = |p: &ExitPlan| expectation(&et, &dist, p, &confs);
        let base = ExitPlan::empty(N);
        let mut rng = SmallRng::seed_from_u64(seed);
        let (_, found) = random_search(&base, &free, 64, &eval, &mut rng);
        let (_, best) = hybrid_search(&base, &free, N, &eval);
        prop_assert!(found >= eval(&base) - 1e-12);
        prop_assert!(found <= best + 1e-9);
    }

    /// Interval masses of any distribution sum to one over a partition.
    #[test]
    fn distribution_masses_partition(dist in arb_dist(),
                                     cuts in proptest::collection::vec(0.0_f64..1.0, 1..8)) {
        let horizon = 11.0;
        let mut points: Vec<f64> = cuts.into_iter().map(|c| c * horizon).collect();
        points.push(0.0);
        points.push(horizon);
        points.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let total: f64 = points
            .windows(2)
            .map(|w| dist.mass_between(w[0], w[1], horizon))
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-6, "total {total}");
    }

    /// Samples always land inside [0, horizon].
    #[test]
    fn distribution_samples_in_range(dist in arb_dist(), seed in 0u64..500) {
        let mut rng = SmallRng::seed_from_u64(seed);
        for _ in 0..32 {
            let t = dist.sample(9.0, &mut rng);
            prop_assert!((0.0..=9.0).contains(&t));
        }
    }

    /// with_frozen_prefix keeps exactly the history below the cut and the
    /// candidate above it.
    #[test]
    fn frozen_prefix_law(a in arb_plan(), b in arb_plan(), prefix in 0usize..=N) {
        let merged = a.with_frozen_prefix(&b, prefix);
        for i in 0..N {
            if i < prefix {
                prop_assert_eq!(merged.get(i), b.get(i));
            } else {
                prop_assert_eq!(merged.get(i), a.get(i));
            }
        }
    }

    /// Plan bit operations are consistent with the executed count.
    #[test]
    fn plan_count_consistency(plan in arb_plan()) {
        prop_assert_eq!(plan.count_executed(), plan.iter_executed().count());
        prop_assert_eq!(plan.to_bools().iter().filter(|&&b| b).count(), plan.count_executed());
    }
}
