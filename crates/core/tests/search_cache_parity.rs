//! The planner cache must be invisible: same plans, bit-identical scores,
//! with or without the memo — across distributions, frozen prefixes, and
//! re-plan steps with changing confidences.

use einet_core::{ExitPlan, ExpectationCache, SearchEngine, TimeDistribution};
use einet_profile::EtProfile;

fn profile(n: usize) -> EtProfile {
    let conv: Vec<f64> = (0..n).map(|i| 0.9 + 0.13 * ((i * 7) % 5) as f64).collect();
    let branch: Vec<f64> = (0..n).map(|i| 0.25 + 0.07 * ((i * 3) % 4) as f64).collect();
    EtProfile::new(conv, branch).unwrap()
}

/// Deterministic pseudo-confidences for step `step`.
fn confs(n: usize, step: u64) -> Vec<f32> {
    (0..n)
        .map(|i| {
            let x = (i as u64 + 1).wrapping_mul(step.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1);
            0.2 + 0.75 * ((x >> 40) as f32 / (1_u64 << 24) as f32)
        })
        .collect()
}

#[test]
fn cached_search_matches_uncached_over_many_steps() {
    for n in [6, 17, 40] {
        let et = profile(n);
        let mut cache = ExpectationCache::new();
        for (d, dist) in [
            TimeDistribution::Uniform,
            TimeDistribution::gaussian(0.5),
            TimeDistribution::piecewise(vec![1.0, 3.0, 2.0, 0.5]),
        ]
        .into_iter()
        .enumerate()
        {
            for step in 0..12_u64 {
                let c = confs(n, step + 100 * d as u64);
                let engine = SearchEngine::new(4);
                let (plan, score) = engine.search(&et, &dist, &c, 0, None);
                let (plan_c, score_c) = engine.search_cached(&et, &dist, &c, 0, None, &mut cache);
                assert_eq!(plan, plan_c, "n={n} step={step}");
                assert_eq!(
                    score.to_bits(),
                    score_c.to_bits(),
                    "n={n} step={step}: {score} vs {score_c}"
                );
            }
        }
        if n > 8 {
            assert!(cache.stats().hits > 0, "n={n}: long models must hit");
        }
    }
}

#[test]
fn cached_search_matches_with_frozen_prefix() {
    let n = 24;
    let et = profile(n);
    let dist = TimeDistribution::Uniform;
    let mut cache = ExpectationCache::new();
    let mut history = ExitPlan::empty(n);
    for step in 0..n as u64 - 1 {
        let c = confs(n, step);
        let frozen = step as usize + 1;
        history.set(step as usize, step % 3 != 0);
        let engine = SearchEngine::new(5);
        let (plan, score) = engine.search(&et, &dist, &c, frozen, Some(&history));
        let (plan_c, score_c) =
            engine.search_cached(&et, &dist, &c, frozen, Some(&history), &mut cache);
        assert_eq!(plan, plan_c, "step={step}");
        assert_eq!(score.to_bits(), score_c.to_bits(), "step={step}");
    }
    let stats = cache.stats();
    assert!(stats.hits + stats.misses > 0);
    assert!(stats.hit_rate() > 0.0 && stats.hit_rate() < 1.0);
}

#[test]
fn cache_reports_meaningful_hit_rate_on_paper_scale() {
    // MSDNet scale: 40 exits, enumerate 4 — the greedy stage re-scores
    // hundreds of deep-bit variants sharing checkpoints.
    let n = 40;
    let et = profile(n);
    let dist = TimeDistribution::Uniform;
    let mut cache = ExpectationCache::new();
    let engine = SearchEngine::new(4);
    let c = confs(n, 7);
    engine.search_cached(&et, &dist, &c, 0, None, &mut cache);
    let stats = cache.stats();
    assert!(
        stats.hit_rate() > 0.5,
        "expected most evaluations to resume from a checkpoint, got {:.3} ({} hits / {} misses)",
        stats.hit_rate(),
        stats.hits,
        stats.misses
    );
    assert!(stats.exits_skipped > 0);
}
