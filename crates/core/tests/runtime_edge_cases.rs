//! Failure-injection and edge-case tests for the elastic runtime and
//! planners.

use einet_core::eval::{overall_accuracy, EvalConfig};
use einet_core::{
    AllExitsPlanner, ClassicPlanner, ConfidenceThresholdPlanner, EinetPlanner, ElasticRuntime,
    ExitPlan, PlanContext, Planner, PlannerDecision, ProfilePriorPlanner, SampleTable,
    SearchEngine, StaticPlanner, TimeDistribution,
};
use einet_predictor::CsPredictor;
use einet_profile::EtProfile;

fn single_exit_profile() -> EtProfile {
    EtProfile::new(vec![2.0], vec![1.0]).unwrap()
}

fn single_exit_table(correct: bool) -> SampleTable {
    SampleTable {
        confidences: vec![0.9],
        predictions: vec![if correct { 3 } else { 4 }],
        label: 3,
    }
}

#[test]
fn single_exit_model_works_end_to_end() {
    let et = single_exit_profile();
    let dist = TimeDistribution::Uniform;
    let rt = ElasticRuntime::new(&et, &dist);
    let mut planner = AllExitsPlanner;
    // Kill after completion (conv 2.0 + branch 1.0 = 3.0).
    let out = rt.run_sample(&single_exit_table(true), &mut planner, 3.5);
    assert!(out.finished);
    assert!(out.correct);
    // Kill during the branch.
    let out = rt.run_sample(&single_exit_table(true), &mut planner, 2.5);
    assert!(out.last.is_none());
}

#[test]
fn planners_handle_single_exit_models() {
    let et = single_exit_profile();
    let dist = TimeDistribution::Uniform;
    let executed = [None];
    let history = ExitPlan::empty(1);
    let ctx = PlanContext {
        et: &et,
        dist: &dist,
        executed: &executed,
        history: &history,
        next_exit: 0,
    };
    let mut planners: Vec<Box<dyn Planner>> = vec![
        Box::new(AllExitsPlanner),
        Box::new(ClassicPlanner),
        Box::new(ConfidenceThresholdPlanner::new(0.5)),
        Box::new(StaticPlanner::percent(1, 1.0)),
        Box::new(ProfilePriorPlanner::new(vec![0.7], SearchEngine::default())),
    ];
    for p in planners.iter_mut() {
        match p.plan(&ctx) {
            PlannerDecision::Plan(plan) => assert_eq!(plan.len(), 1, "{}", p.name()),
            PlannerDecision::Stop => {}
        }
    }
}

#[test]
fn einet_survives_degenerate_confidences() {
    // All-zero and all-one confidence tables must not panic or divide by
    // zero anywhere in the planner stack.
    let et = EtProfile::new(vec![1.0; 4], vec![0.5; 4]).unwrap();
    let dist = TimeDistribution::Uniform;
    let predictor = CsPredictor::new(4, 16, 1);
    for conf in [0.0_f32, 1.0] {
        let tables = vec![SampleTable {
            confidences: vec![conf; 4],
            predictions: vec![0; 4],
            label: 0,
        }];
        let mut planner = EinetPlanner::new(&predictor, vec![conf; 4], SearchEngine::default());
        let acc = overall_accuracy(
            &et,
            &dist,
            &tables,
            &mut planner,
            &EvalConfig { trials: 4, seed: 1 },
        );
        assert!((0.0..=1.0).contains(&acc));
    }
}

#[test]
fn piecewise_distribution_with_spike_drives_early_plans() {
    // All kill mass in the first third of the horizon: the planner should
    // strongly prefer an early output (a later-only plan scores zero).
    let et = EtProfile::new(vec![1.0; 10], vec![0.5; 10]).unwrap();
    let mut weights = vec![0.0; 10];
    weights[..3].fill(1.0);
    let dist = TimeDistribution::piecewise(weights);
    let prior = vec![0.5_f32; 10];
    let engine = SearchEngine::default();
    let (plan, _) = engine.search(&et, &dist, &prior, 0, None);
    assert!(
        plan.get(0),
        "with all kill mass up front, exit 0 must be executed: {plan}"
    );
}

#[test]
fn late_spike_distribution_prefers_deep_output() {
    let et = EtProfile::new(vec![1.0; 10], vec![0.5; 10]).unwrap();
    let mut weights = vec![0.0; 10];
    weights[9] = 1.0;
    let dist = TimeDistribution::piecewise(weights);
    // Deeper exits are better for this cohort.
    let prior: Vec<f32> = (0..10).map(|i| 0.3 + 0.07 * i as f32).collect();
    let engine = SearchEngine::default();
    let (plan, _) = engine.search(&et, &dist, &prior, 0, None);
    // The plan must execute at least one exit deep enough to matter; the
    // early exits are useless under a late-only kill.
    let deepest = plan.iter_executed().last().unwrap();
    assert!(deepest >= 5, "plan {plan} too shallow for late kills");
}

#[test]
fn replanning_cannot_rewrite_history() {
    // A malicious planner that always demands the full plan must still see
    // its past skips preserved by the runtime merge.
    struct FlipFlop;
    impl Planner for FlipFlop {
        fn name(&self) -> String {
            "flipflop".into()
        }
        fn plan(&mut self, ctx: &PlanContext<'_>) -> PlannerDecision {
            // First call: skip exit 0, execute exit 1; later calls: demand
            // everything (including the already-passed exit 0).
            if ctx.next_exit == 0 {
                PlannerDecision::Plan(ExitPlan::from_indices(3, &[1]))
            } else {
                PlannerDecision::Plan(ExitPlan::full(3))
            }
        }
    }
    let et = EtProfile::new(vec![1.0; 3], vec![0.5; 3]).unwrap();
    let dist = TimeDistribution::Uniform;
    let rt = ElasticRuntime::new(&et, &dist);
    let table = SampleTable {
        confidences: vec![0.2, 0.5, 0.9],
        predictions: vec![1, 1, 1],
        label: 1,
    };
    let out = rt.run_sample(&table, &mut FlipFlop, 100.0);
    // Exit 0 was skipped and stays skipped; exits 1 and 2 execute.
    assert_eq!(out.outputs, 2);
    assert_eq!(out.last.unwrap().exit, 2);
}

#[test]
fn overall_accuracy_single_trial_and_many_trials_agree_in_expectation() {
    let et = EtProfile::new(vec![1.0; 3], vec![0.5; 3]).unwrap();
    let dist = TimeDistribution::Uniform;
    let tables: Vec<SampleTable> = (0..50)
        .map(|s| SampleTable {
            confidences: vec![0.4, 0.6, 0.8],
            predictions: vec![(s % 2) as u16, 0, 0],
            label: 0,
        })
        .collect();
    let mut p = AllExitsPlanner;
    let few = overall_accuracy(
        &et,
        &dist,
        &tables,
        &mut p,
        &EvalConfig { trials: 2, seed: 3 },
    );
    let many = overall_accuracy(
        &et,
        &dist,
        &tables,
        &mut p,
        &EvalConfig {
            trials: 50,
            seed: 3,
        },
    );
    // Same distribution — the estimates should be within sampling noise.
    assert!((few - many).abs() < 0.15, "few {few} vs many {many}");
}
